//! An LSTM language model — the generator of the NetGAN-lite baseline
//! (NetGAN trains an LSTM to emit plausible random walks).

use rand::Rng;

use crate::decode::sample_softmax_probs;
use crate::embedding::Embedding;
use crate::linear::Linear;
use crate::mat::Mat;
use crate::param::{HasParams, Param};
use crate::softmax::{cross_entropy, log_softmax};
use fairgen_graph::error::Result;

/// Per-timestep forward cache.
#[derive(Clone, Debug)]
struct StepCache {
    z: Mat,      // 1 × (in + hidden): concatenated [x_t, h_{t-1}]
    i: Vec<f64>, // input gate
    f: Vec<f64>, // forget gate
    o: Vec<f64>, // output gate
    g: Vec<f64>, // candidate
    c_prev: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// A single-layer LSTM language model over token sequences with an implicit
/// BOS token (id = `vocab`).
#[derive(Clone, Debug)]
pub struct LstmLm {
    vocab: usize,
    hidden: usize,
    embed: Embedding,
    /// Gate weights (`(embed_dim + hidden) × 4·hidden`), gate order
    /// `[i, f, o, g]`.
    pub w: Param,
    /// Gate biases (`1 × 4·hidden`).
    pub b: Param,
    head: Linear,
    cache: Vec<StepCache>,
    /// Lazily-created decode state reused across [`LstmLm::sample`] calls.
    /// Never checkpointed.
    decode_scratch: Option<LstmDecodeState>,
}

/// Reusable incremental-decoding state for [`LstmLm`]: the carried hidden
/// and cell rows plus every scratch buffer the step path needs, so sampling
/// one token costs one LSTM step instead of re-running the whole sequence.
#[derive(Clone, Debug)]
pub struct LstmDecodeState {
    h: Vec<f64>,
    c: Vec<f64>,
    z: Mat,     // 1 × (in + hidden)
    gates: Mat, // 1 × 4·hidden
    logits: Vec<f64>,
    probs: Vec<f64>,
}

impl LstmDecodeState {
    /// Rewinds to the zero state for a new sequence.
    pub fn reset(&mut self) {
        self.h.iter_mut().for_each(|v| *v = 0.0);
        self.c.iter_mut().for_each(|v| *v = 0.0);
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Batched decoding state for [`LstmLm::sample_batch_with`]: up to `width`
/// concurrent walks advance in lockstep, the gate projection running as one
/// `M × (in+hidden) · (in+hidden) × 4·hidden` GEMM per token instead of one
/// vector–matrix product per walk. Row `r` of every matrix belongs to the
/// `r`-th *active* walk; [`LstmBatchState::retire`] drops a finished walk's
/// row (survivors shift up, their carried `(h, c)` bits untouched).
#[derive(Clone, Debug)]
pub struct LstmBatchState {
    width: usize,
    active: usize,
    h: Mat,      // width × hidden
    c: Mat,      // width × hidden
    z: Mat,      // width × (in + hidden)
    gates: Mat,  // width × 4·hidden
    logits: Mat, // width × vocab
    probs: Vec<f64>,
}

impl LstmBatchState {
    /// Starts a new batch of `m` walks from the zero `(h, c)` state.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the state's width.
    pub fn reset(&mut self, m: usize) {
        assert!(m <= self.width, "batch of {m} exceeds state width {}", self.width);
        self.active = m;
        for r in 0..m {
            self.h.row_mut(r).iter_mut().for_each(|v| *v = 0.0);
            self.c.row_mut(r).iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Retires active row `row`: its successors' `(h, c)` rows shift up one
    /// slot, bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not an active row.
    pub fn retire(&mut self, row: usize) {
        self.h.remove_row_prefix(row, self.active);
        self.c.remove_row_prefix(row, self.active);
        self.active -= 1;
    }

    /// Number of currently active walks.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The widest batch this state can hold.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl LstmLm {
    /// Builds an LSTM LM. `dim` is the embedding width, `hidden` the state
    /// width.
    pub fn new<R: Rng + ?Sized>(vocab: usize, dim: usize, hidden: usize, rng: &mut R) -> Self {
        assert!(vocab > 0 && dim > 0 && hidden > 0);
        let mut b = Mat::zeros(1, 4 * hidden);
        // Standard trick: initialize the forget-gate bias to 1.
        for h in 0..hidden {
            b.set(0, hidden + h, 1.0);
        }
        LstmLm {
            vocab,
            hidden,
            embed: Embedding::new(vocab + 1, dim, rng),
            w: Param::new(Mat::xavier(dim + hidden, 4 * hidden, rng)),
            b: Param::new(b),
            head: Linear::new(hidden, vocab, rng),
            cache: Vec::new(),
            decode_scratch: None,
        }
    }

    /// The BOS token id.
    pub fn bos(&self) -> usize {
        self.vocab
    }

    /// Vocabulary size (excluding BOS).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    fn step(&mut self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let hid = self.hidden;
        let in_dim = x.len();
        let mut z = Mat::zeros(1, in_dim + hid);
        z.row_mut(0)[..in_dim].copy_from_slice(x);
        z.row_mut(0)[in_dim..].copy_from_slice(h_prev);
        let mut gates = z.matmul(&self.w.value);
        for (k, v) in gates.row_mut(0).iter_mut().enumerate() {
            *v += self.b.value.get(0, k);
        }
        let gr = gates.row(0);
        let i: Vec<f64> = (0..hid).map(|k| sigmoid(gr[k])).collect();
        let f: Vec<f64> = (0..hid).map(|k| sigmoid(gr[hid + k])).collect();
        let o: Vec<f64> = (0..hid).map(|k| sigmoid(gr[2 * hid + k])).collect();
        let g: Vec<f64> = (0..hid).map(|k| gr[3 * hid + k].tanh()).collect();
        let c: Vec<f64> = (0..hid).map(|k| f[k] * c_prev[k] + i[k] * g[k]).collect();
        let tanh_c: Vec<f64> = c.iter().map(|&v| v.tanh()).collect();
        let h: Vec<f64> = (0..hid).map(|k| o[k] * tanh_c[k]).collect();
        self.cache.push(StepCache { z, i, f, o, g, c_prev: c_prev.to_vec(), tanh_c });
        (h, c)
    }

    /// Forward over `[BOS, seq…]`: row `t` of the output logits predicts
    /// `seq[t]`.
    pub fn forward(&mut self, seq: &[usize]) -> Mat {
        assert!(!seq.is_empty(), "empty sequence");
        self.cache.clear();
        let mut ids = Vec::with_capacity(seq.len());
        ids.push(self.bos());
        ids.extend_from_slice(&seq[..seq.len() - 1]);
        let x = self.embed.forward(&ids);
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut states = Mat::zeros(ids.len(), self.hidden);
        for (t, _) in ids.iter().enumerate() {
            let (nh, nc) = self.step(x.row(t), &h, &c);
            states.row_mut(t).copy_from_slice(&nh);
            h = nh;
            c = nc;
        }
        self.head.forward(&states)
    }

    /// Backward through time from `dlogits`; accumulates all gradients.
    pub fn backward(&mut self, dlogits: &Mat) {
        let dstates = self.head.backward(dlogits);
        let hid = self.hidden;
        let steps = self.cache.len();
        let in_dim = self.w.value.rows() - hid;
        let mut dh_next = vec![0.0; hid];
        let mut dc_next = vec![0.0; hid];
        let mut dx_all = Mat::zeros(steps, in_dim);
        for t in (0..steps).rev() {
            let cache = &self.cache[t];
            let mut dh: Vec<f64> = dstates.row(t).to_vec();
            for k in 0..hid {
                dh[k] += dh_next[k];
            }
            // h = o ⊙ tanh(c)
            let mut dc = vec![0.0; hid];
            let mut dgates = Mat::zeros(1, 4 * hid);
            for k in 0..hid {
                let d_o = dh[k] * cache.tanh_c[k];
                dc[k] =
                    dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]) + dc_next[k];
                let d_i = dc[k] * cache.g[k];
                let d_f = dc[k] * cache.c_prev[k];
                let d_g = dc[k] * cache.i[k];
                // Through the gate nonlinearities.
                dgates.set(0, k, d_i * cache.i[k] * (1.0 - cache.i[k]));
                dgates.set(0, hid + k, d_f * cache.f[k] * (1.0 - cache.f[k]));
                dgates.set(0, 2 * hid + k, d_o * cache.o[k] * (1.0 - cache.o[k]));
                dgates.set(0, 3 * hid + k, d_g * (1.0 - cache.g[k] * cache.g[k]));
            }
            // gates = z W + b
            self.w.grad.add_assign(&cache.z.matmul_tn(&dgates));
            for k in 0..4 * hid {
                let cur = self.b.grad.get(0, k);
                self.b.grad.set(0, k, cur + dgates.get(0, k));
            }
            let dz = dgates.matmul_nt(&self.w.value);
            dx_all.row_mut(t).copy_from_slice(&dz.row(0)[..in_dim]);
            dh_next = dz.row(0)[in_dim..].to_vec();
            dc_next = (0..hid).map(|k| dc[k] * cache.f[k]).collect();
        }
        self.embed.backward(&dx_all);
    }

    /// One training step: positive `weight` = likelihood (cross-entropy),
    /// negative `weight` = bounded unlikelihood `−log(1 − p)` with magnitude
    /// `|weight|`. Returns the loss.
    pub fn train_step(&mut self, seq: &[usize], weight: f64) -> f64 {
        let logits = self.forward(seq);
        let (loss, mut dlogits) = if weight >= 0.0 {
            cross_entropy(&logits, seq, None)
        } else {
            crate::softmax::unlikelihood(&logits, seq)
        };
        let scale = weight.abs();
        if scale != 1.0 {
            dlogits.scale(scale);
        }
        self.backward(&dlogits);
        loss
    }

    /// Mean NLL of `seq` (no gradients).
    pub fn nll(&mut self, seq: &[usize]) -> f64 {
        let logits = self.forward(seq);
        let ls = log_softmax(&logits);
        let mut total = 0.0;
        for (i, &t) in seq.iter().enumerate() {
            total -= ls.get(i, t);
        }
        total / seq.len() as f64
    }

    /// Creates a decode state sized for this model, for use with
    /// [`LstmLm::sample_with`].
    pub fn decode_state(&self) -> LstmDecodeState {
        LstmDecodeState {
            h: vec![0.0; self.hidden],
            c: vec![0.0; self.hidden],
            z: Mat::zeros(1, self.embed.dim() + self.hidden),
            gates: Mat::zeros(1, 4 * self.hidden),
            logits: vec![0.0; self.vocab],
            probs: Vec::with_capacity(self.vocab),
        }
    }

    /// One incremental decode step: consumes `token` (or BOS), advances the
    /// carried `(h, c)` state, and leaves next-token logits in
    /// `state.logits`. Bit-exact with the corresponding row of
    /// [`LstmLm::forward`] — re-running the whole prefix repeats the same
    /// float ops, so carrying the state reproduces it exactly.
    fn step_decode(&self, state: &mut LstmDecodeState, token: usize) {
        let hid = self.hidden;
        let in_dim = self.embed.dim();
        let LstmDecodeState { h, c, z, gates, logits, .. } = state;
        {
            let zr = z.row_mut(0);
            self.embed.lookup_into(token, &mut zr[..in_dim]);
            zr[in_dim..].copy_from_slice(h);
        }
        z.matmul_into(&self.w.value, gates);
        for (k, v) in gates.row_mut(0).iter_mut().enumerate() {
            *v += self.b.value.get(0, k);
        }
        let gr = gates.row(0);
        for k in 0..hid {
            let i = sigmoid(gr[k]);
            let f = sigmoid(gr[hid + k]);
            let o = sigmoid(gr[2 * hid + k]);
            let g = gr[3 * hid + k].tanh();
            let cn = f * c[k] + i * g;
            let tanh_c = cn.tanh();
            c[k] = cn;
            h[k] = o * tanh_c;
        }
        self.head.forward_row(h, logits);
    }

    /// Creates a batched decode state holding up to `width` concurrent
    /// walks, for [`LstmLm::sample_batch_with`].
    pub fn batch_decode_state(&self, width: usize) -> LstmBatchState {
        assert!(width > 0, "batch width must be positive");
        LstmBatchState {
            width,
            active: 0,
            h: Mat::zeros(width, self.hidden),
            c: Mat::zeros(width, self.hidden),
            z: Mat::zeros(width, self.embed.dim() + self.hidden),
            gates: Mat::zeros(width, 4 * self.hidden),
            logits: Mat::zeros(width, self.vocab),
            probs: Vec::with_capacity(self.vocab),
        }
    }

    /// One batched decode step: consumes `tokens[i]` for active walk `i`,
    /// advancing every carried `(h, c)` row through a single gate GEMM.
    /// Row `i` of `state.logits` is bit-exact with [`LstmLm::step_decode`]
    /// fed walk `i`'s tokens alone (the prefix GEMM accumulates each output
    /// element ascending-`k`, exactly like the 1-row `matmul_into`; the gate
    /// nonlinearities are per-element).
    fn step_batch(&self, state: &mut LstmBatchState, tokens: &[usize]) {
        let hid = self.hidden;
        let in_dim = self.embed.dim();
        let m = tokens.len();
        assert_eq!(m, state.active, "one token per active walk");
        assert_eq!(state.z.cols(), in_dim + hid, "batch state width mismatch");
        assert_eq!(state.logits.cols(), self.vocab, "batch state vocab mismatch");
        let LstmBatchState { h, c, z, gates, logits, .. } = state;
        for (r, &tok) in tokens.iter().enumerate() {
            let zr = z.row_mut(r);
            self.embed.lookup_into(tok, &mut zr[..in_dim]);
            zr[in_dim..].copy_from_slice(h.row(r));
        }
        z.matmul_prefix_into(m, &self.w.value, gates);
        for r in 0..m {
            for (k, v) in gates.row_mut(r).iter_mut().enumerate() {
                *v += self.b.value.get(0, k);
            }
        }
        for r in 0..m {
            let gr = gates.row(r);
            let cr = c.row_mut(r);
            let hr = h.row_mut(r);
            for k in 0..hid {
                let i = sigmoid(gr[k]);
                let f = sigmoid(gr[hid + k]);
                let o = sigmoid(gr[2 * hid + k]);
                let g = gr[3 * hid + k].tanh();
                let cn = f * cr[k] + i * g;
                let tanh_c = cn.tanh();
                cr[k] = cn;
                hr[k] = o * tanh_c;
            }
        }
        self.head.forward_rows(m, h, logits);
    }

    /// Samples `lens.len()` sequences in lockstep against a caller-owned
    /// [`LstmBatchState`] (reset on entry), drawing walk `i`'s tokens from
    /// `rngs[i]` — one RNG stream per walk, one uniform draw per token, so
    /// every walk is bit-identical to [`LstmLm::sample_with`] fed the same
    /// stream, at any batch width. Finished walks retire from the batch
    /// without touching the survivors' state or RNG streams.
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::Generate`] if a step's softmax
    /// degenerates; walks are sampled position-by-position in walk order, so
    /// the first failing (position, walk) pair reports first.
    ///
    /// # Panics
    ///
    /// Panics if `rngs` and `lens` disagree, the batch exceeds the state's
    /// width, or the temperature is not positive.
    pub fn sample_batch_with<R: Rng>(
        &self,
        state: &mut LstmBatchState,
        lens: &[usize],
        temperature: f64,
        rngs: &mut [R],
    ) -> Result<Vec<Vec<usize>>> {
        assert_eq!(lens.len(), rngs.len(), "one RNG stream per walk");
        assert!(temperature > 0.0, "temperature must be positive");
        let n = lens.len();
        state.reset(n);
        let inv_t = 1.0 / temperature;
        let mut seqs: Vec<Vec<usize>> = lens.iter().map(|&l| Vec::with_capacity(l)).collect();
        // active[row] = walk index owning state row `row`.
        let mut active: Vec<usize> = (0..n).collect();
        let mut tokens = vec![self.bos(); n];
        for row in (0..active.len()).rev() {
            if lens[active[row]] == 0 {
                state.retire(row);
                active.remove(row);
                tokens.remove(row);
            }
        }
        while !active.is_empty() {
            let m = active.len();
            self.step_batch(state, &tokens[..m]);
            for (row, &walk) in active.iter().enumerate() {
                let tok = sample_softmax_probs(
                    state.logits.row(row),
                    inv_t,
                    &mut state.probs,
                    &mut rngs[walk],
                )?;
                seqs[walk].push(tok);
                tokens[row] = tok;
            }
            for row in (0..active.len()).rev() {
                let walk = active[row];
                if seqs[walk].len() == lens[walk] {
                    state.retire(row);
                    active.remove(row);
                    tokens.remove(row);
                }
            }
        }
        Ok(seqs)
    }

    /// Autoregressive sampling of `len` tokens, carrying the hidden state
    /// across steps (one LSTM step per token instead of re-running the
    /// whole sequence). Token-identical to [`LstmLm::sample_ref`] at any
    /// seed.
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::Generate`] if a step's softmax
    /// degenerates.
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        let mut state = self.decode_scratch.take().unwrap_or_else(|| self.decode_state());
        let out = self.sample_with(&mut state, len, temperature, rng);
        self.decode_scratch = Some(state);
        out
    }

    /// [`LstmLm::sample`] against a caller-owned state (reset on entry).
    pub fn sample_with<R: Rng + ?Sized>(
        &self,
        state: &mut LstmDecodeState,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        assert!(temperature > 0.0);
        state.reset();
        let inv_t = 1.0 / temperature;
        let mut seq = Vec::with_capacity(len);
        let mut tok = self.bos();
        for _ in 0..len {
            self.step_decode(state, tok);
            tok = sample_softmax_probs(&state.logits, inv_t, &mut state.probs, rng)?;
            seq.push(tok);
        }
        Ok(seq)
    }

    /// Reference sampler: re-forwards the whole prefix per token (the
    /// pre-state-carry O(T²) path), kept as ground truth for parity tests
    /// and before/after benchmarks.
    pub fn sample_ref<R: Rng + ?Sized>(
        &mut self,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        assert!(temperature > 0.0);
        let inv_t = 1.0 / temperature;
        let mut seq: Vec<usize> = Vec::with_capacity(len);
        let mut probs: Vec<f64> = Vec::with_capacity(self.vocab);
        for _ in 0..len {
            let mut probe = seq.clone();
            probe.push(0);
            let logits = self.forward(&probe);
            let last = logits.rows() - 1;
            let tok = sample_softmax_probs(logits.row(last), inv_t, &mut probs, rng)?;
            seq.push(tok);
        }
        Ok(seq)
    }
}

impl HasParams for LstmLm {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.for_each_param(f);
        f(&mut self.w);
        f(&mut self.b);
        self.head.for_each_param(f);
    }
}

impl fairgen_graph::Codec for LstmLm {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.vocab);
        enc.put_usize(self.hidden);
        fairgen_graph::Codec::encode(&self.embed, enc);
        fairgen_graph::Codec::encode(&self.w, enc);
        fairgen_graph::Codec::encode(&self.b, enc);
        fairgen_graph::Codec::encode(&self.head, enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let vocab = dec.take_usize()?;
        let hidden = dec.take_usize()?;
        let embed = <Embedding as fairgen_graph::Codec>::decode(dec)?;
        let w = <Param as fairgen_graph::Codec>::decode(dec)?;
        let b = <Param as fairgen_graph::Codec>::decode(dec)?;
        let head = <Linear as fairgen_graph::Codec>::decode(dec)?;
        let corrupt =
            |detail: String| fairgen_graph::FairGenError::CorruptCheckpoint { detail };
        if vocab == 0 || hidden == 0 {
            return Err(corrupt(format!("degenerate lstm: vocab={vocab}, hidden={hidden}")));
        }
        if embed.vocab() != vocab + 1 {
            return Err(corrupt(format!(
                "lstm embedding rows {} disagree with vocab {vocab} (+BOS)",
                embed.vocab()
            )));
        }
        crate::mat::check_shape(&w.value, embed.dim() + hidden, 4 * hidden, "lstm gates")?;
        crate::mat::check_shape(&b.value, 1, 4 * hidden, "lstm gate bias")?;
        if head.input_dim() != hidden || head.output_dim() != vocab {
            return Err(corrupt(format!(
                "lstm head {}→{} disagrees with hidden={hidden}, vocab={vocab}",
                head.input_dim(),
                head.output_dim()
            )));
        }
        Ok(LstmLm { vocab, hidden, embed, w, b, head, cache: Vec::new(), decode_scratch: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny(vocab: usize) -> LstmLm {
        let mut rng = StdRng::seed_from_u64(21);
        LstmLm::new(vocab, 6, 8, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut lm = tiny(5);
        let logits = lm.forward(&[0, 1, 2, 3]);
        assert_eq!((logits.rows(), logits.cols()), (4, 5));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut lm = tiny(4);
        let seq = [1usize, 0, 3, 2];
        check_param_gradients(
            &mut lm,
            |m| {
                let logits = m.forward(&seq);
                let (loss, dlogits) = cross_entropy(&logits, &seq, None);
                m.backward(&dlogits);
                loss
            },
            1e-5,
            2e-4,
        );
    }

    #[test]
    fn overfits_single_sequence() {
        let mut lm = tiny(6);
        let seq = [5usize, 0, 3, 3, 1];
        let mut opt = Adam::new(0.02);
        let initial = lm.nll(&seq);
        for _ in 0..300 {
            lm.zero_grad();
            lm.train_step(&seq, 1.0);
            opt.step(&mut lm);
        }
        let final_nll = lm.nll(&seq);
        assert!(final_nll < initial * 0.2, "{initial} → {final_nll}");
    }

    #[test]
    fn samples_in_vocab() {
        let mut lm = tiny(9);
        let mut rng = StdRng::seed_from_u64(3);
        let s = lm.sample(7, 1.0, &mut rng).expect("sample");
        assert_eq!(s.len(), 7);
        assert!(s.iter().all(|&t| t < 9));
    }

    #[test]
    fn state_carry_sampling_matches_reference_bit_for_bit() {
        let mut lm = tiny(8);
        for seed in 0..8u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let inc = lm.sample(7, 0.9, &mut r1).expect("incremental");
            let full = lm.sample_ref(7, 0.9, &mut r2).expect("reference");
            assert_eq!(inc, full, "seed {seed}");
        }
    }

    #[test]
    fn negative_training_raises_nll() {
        let mut lm = tiny(4);
        let seq = [0usize, 1, 2];
        let mut opt = Adam::new(0.01);
        let initial = lm.nll(&seq);
        for _ in 0..80 {
            lm.zero_grad();
            lm.train_step(&seq, -1.0);
            opt.step(&mut lm);
        }
        assert!(lm.nll(&seq) > initial);
    }
}
