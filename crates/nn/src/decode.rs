//! Incremental (KV-cached) decoding state and the shared token samplers.
//!
//! Autoregressive walk sampling is the per-draw hot path of every generator
//! in this workspace (see `tab4_runtime`): the pre-KV-cache samplers
//! re-forwarded the whole prefix through every block for every generated
//! token — O(T²) layer passes per walk, with fresh matrix allocations per
//! step. A [`DecodeState`] instead carries per-block key/value caches and a
//! rolling position, so extending the sequence by one token costs one row of
//! work per layer (O(T·d) total) and touches no fresh allocations after
//! construction.
//!
//! Everything here is **bit-exact** with the full-forward reference path:
//! the decode steps accumulate in the same order as the batched forward
//! (see [`crate::mat::vecmat_into`]), and the samplers below consume exactly
//! one `f64` from the RNG per token, so
//! `sample(seed) == sample_ref(seed)` token-for-token — asserted by the
//! parity suite in `tests/decode_parity.rs`. Checkpoint round-trip
//! determinism builds on the same guarantee.

use fairgen_graph::error::{FairGenError, Result};
use rand::Rng;

use crate::attention::{AttnBatchScratch, KvCache};
use crate::mat::Mat;

/// Reusable per-sequence decoding state for [`crate::TransformerLm`]:
/// per-block KV caches, the rolling position, and every scratch row the
/// step path needs. Create once via
/// [`crate::TransformerLm::decode_state`] and reuse across any number of
/// sampled walks (the samplers reset it); batched serving reuses one
/// allocation for the whole batch.
#[derive(Clone, Debug)]
pub struct DecodeState {
    /// Tokens consumed so far (the next step writes KV row `pos`).
    pub(crate) pos: usize,
    pub(crate) max_len: usize,
    pub(crate) d_model: usize,
    pub(crate) blocks: Vec<KvCache>,
    pub(crate) rows: RowScratch,
    /// Next-token logits of the most recent step (`vocab` wide).
    pub(crate) logits: Vec<f64>,
    /// Softmax scratch for the samplers.
    pub(crate) weights: Vec<f64>,
}

/// The per-step scratch rows threaded through every block.
#[derive(Clone, Debug)]
pub(crate) struct RowScratch {
    /// Residual stream (`d_model`).
    pub(crate) x: Vec<f64>,
    /// LayerNorm output (`d_model`).
    pub(crate) norm: Vec<f64>,
    /// Attention output (`d_model`).
    pub(crate) attn_out: Vec<f64>,
    /// FFN pre-activation (`ffn` wide).
    pub(crate) ff_pre: Vec<f64>,
    /// FFN activation (`ffn` wide).
    pub(crate) ff_act: Vec<f64>,
    /// FFN output (`d_model`).
    pub(crate) ff_out: Vec<f64>,
}

impl DecodeState {
    pub(crate) fn new(
        layers: usize,
        d_model: usize,
        ffn: usize,
        max_len: usize,
        vocab: usize,
    ) -> Self {
        DecodeState {
            pos: 0,
            max_len,
            d_model,
            blocks: (0..layers).map(|_| KvCache::new(max_len, d_model)).collect(),
            rows: RowScratch {
                x: vec![0.0; d_model],
                norm: vec![0.0; d_model],
                attn_out: vec![0.0; d_model],
                ff_pre: vec![0.0; ffn],
                ff_act: vec![0.0; ffn],
                ff_out: vec![0.0; d_model],
            },
            logits: vec![0.0; vocab],
            weights: Vec::with_capacity(vocab),
        }
    }

    /// Starts a new sequence: rewinds the position without releasing any
    /// buffer (stale KV rows are overwritten as decoding advances).
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Number of tokens consumed since the last [`DecodeState::reset`].
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The maximum number of tokens this state can hold.
    pub fn capacity(&self) -> usize {
        self.max_len
    }
}

/// Batched decoding state for [`crate::TransformerLm::step_batch`]: up to
/// `width` concurrent walks advance in lockstep, sharing one set of M-row
/// activation matrices (one GEMM per layer per token) while each walk keeps
/// its own per-layer KV cache. Created via
/// [`crate::TransformerLm::batch_decode_state`]; one state serves any
/// number of batches (reset between them), so serving paths amortize the
/// allocation exactly like the single-walk [`DecodeState`].
///
/// Row `r` of every activation matrix belongs to the `r`-th *active* walk.
/// When a walk finishes early, [`BatchDecodeState::retire`] removes its row
/// from the active set; surviving walks keep their caches (and therefore
/// their exact float history) — only their row index shifts.
#[derive(Clone, Debug)]
pub struct BatchDecodeState {
    pub(crate) pos: usize,
    pub(crate) width: usize,
    pub(crate) max_len: usize,
    pub(crate) d_model: usize,
    /// `layers[l][r]` is active walk `r`'s KV cache for block `l`.
    pub(crate) layers: Vec<Vec<KvCache>>,
    /// Retired caches, recycled on the next [`BatchDecodeState::reset`]
    /// (all caches share one shape, so any spare fits any layer/walk slot).
    spare: Vec<KvCache>,
    pub(crate) rows: BatchRows,
    /// Next-token logits of the most recent step (`width × vocab`; only the
    /// first `m` rows are live).
    pub(crate) logits: Mat,
    /// Softmax scratch for the samplers.
    pub(crate) weights: Vec<f64>,
}

/// The M-row activation scratch threaded through every block by the batched
/// step path — the batch analogue of [`RowScratch`].
#[derive(Clone, Debug)]
pub(crate) struct BatchRows {
    /// Residual stream (`width × d_model`).
    pub(crate) x: Mat,
    /// LayerNorm output (`width × d_model`).
    pub(crate) norm: Mat,
    /// Attention Q/K/V/concat scratch.
    pub(crate) attn: AttnBatchScratch,
    /// Attention output (`width × d_model`).
    pub(crate) attn_out: Mat,
    /// FFN pre-activation (`width × ffn`).
    pub(crate) ff_pre: Mat,
    /// FFN activation (`width × ffn`).
    pub(crate) ff_act: Mat,
    /// FFN output (`width × d_model`).
    pub(crate) ff_out: Mat,
}

impl BatchDecodeState {
    pub(crate) fn new(
        layers: usize,
        d_model: usize,
        ffn: usize,
        max_len: usize,
        vocab: usize,
        width: usize,
    ) -> Self {
        assert!(width > 0, "batch width must be positive");
        BatchDecodeState {
            pos: 0,
            width,
            max_len,
            d_model,
            layers: (0..layers)
                .map(|_| (0..width).map(|_| KvCache::new(max_len, d_model)).collect())
                .collect(),
            spare: Vec::new(),
            rows: BatchRows {
                x: Mat::zeros(width, d_model),
                norm: Mat::zeros(width, d_model),
                attn: AttnBatchScratch::new(width, d_model),
                attn_out: Mat::zeros(width, d_model),
                ff_pre: Mat::zeros(width, ffn),
                ff_act: Mat::zeros(width, ffn),
                ff_out: Mat::zeros(width, d_model),
            },
            logits: Mat::zeros(width, vocab),
            weights: Vec::with_capacity(vocab),
        }
    }

    /// Starts a new batch of `m` walks: rewinds the position and ensures
    /// every layer holds exactly `m` caches, recycling retired ones (stale
    /// KV rows are overwritten as decoding advances, exactly like
    /// [`DecodeState::reset`]).
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the state's width.
    pub fn reset(&mut self, m: usize) {
        assert!(m <= self.width, "batch of {m} exceeds state width {}", self.width);
        self.pos = 0;
        for layer in &mut self.layers {
            while layer.len() > m {
                self.spare.push(layer.pop().expect("non-empty layer"));
            }
            while layer.len() < m {
                let cache = self
                    .spare
                    .pop()
                    .unwrap_or_else(|| KvCache::new(self.max_len, self.d_model));
                layer.push(cache);
            }
        }
    }

    /// Retires active row `row`: the walk's caches leave every layer (its
    /// successors shift down one row) and are recycled for future batches.
    /// Survivors' caches — and therefore their sampled tokens — are
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not an active row.
    pub fn retire(&mut self, row: usize) {
        for layer in &mut self.layers {
            assert!(row < layer.len(), "retiring inactive row {row}");
            self.spare.push(layer.remove(row));
        }
    }

    /// Number of currently active walks.
    pub fn active(&self) -> usize {
        self.layers.first().map_or(0, Vec::len)
    }

    /// Number of tokens consumed since the last [`BatchDecodeState::reset`].
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The widest batch this state can hold.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The maximum number of tokens this state can hold per walk.
    pub fn capacity(&self) -> usize {
        self.max_len
    }
}

/// Draws a token from the temperature-scaled softmax of a logits row,
/// reusing `weights` as scratch. This is the transformer sampler: weights
/// are the shifted, scaled exponentials (left unnormalized; the draw scales
/// the uniform variate by their sum) and exactly one `f64` is consumed from
/// `rng` — bit-compatible with the pre-KV-cache sampler.
///
/// # Errors
///
/// [`FairGenError::Generate`] when the weights degenerate (an all-`-inf`
/// row after temperature scaling yields a zero or non-finite sum), instead
/// of silently picking the last vocabulary token.
pub fn sample_scaled_softmax<R: Rng + ?Sized>(
    row: &[f64],
    inv_t: f64,
    weights: &mut Vec<f64>,
    rng: &mut R,
) -> Result<usize> {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    weights.clear();
    let mut sum = 0.0;
    for &l in row {
        let w = ((l - max) * inv_t).exp();
        weights.push(w);
        sum += w;
    }
    if !sum.is_finite() || sum <= 0.0 {
        return Err(FairGenError::Generate {
            detail: format!("degenerate softmax: weight sum {sum} over {} logits", row.len()),
        });
    }
    let mut target = rng.gen::<f64>() * sum;
    let mut tok = weights.len() - 1;
    for (c, &w) in weights.iter().enumerate() {
        if target < w {
            tok = c;
            break;
        }
        target -= w;
    }
    Ok(tok)
}

/// Draws a token from the *normalized* softmax of `row · inv_t`, reusing
/// `probs` as scratch. This is the LSTM sampler: probabilities are
/// normalized first and the draw compares a raw uniform variate against
/// them — bit-compatible with the pre-KV-cache LSTM sampler (which scaled
/// the logits row, ran `softmax_rows`, then scanned).
///
/// # Errors
///
/// [`FairGenError::Generate`] on a degenerate distribution, as with
/// [`sample_scaled_softmax`].
pub fn sample_softmax_probs<R: Rng + ?Sized>(
    row: &[f64],
    inv_t: f64,
    probs: &mut Vec<f64>,
    rng: &mut R,
) -> Result<usize> {
    probs.clear();
    probs.extend(row.iter().map(|&l| l * inv_t));
    let max = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for p in probs.iter_mut() {
        let e = (*p - max).exp();
        *p = e;
        sum += e;
    }
    if !sum.is_finite() || sum <= 0.0 {
        return Err(FairGenError::Generate {
            detail: format!("degenerate softmax: weight sum {sum} over {} logits", row.len()),
        });
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    let mut target = rng.gen::<f64>();
    let mut tok = probs.len() - 1;
    for (c, &p) in probs.iter().enumerate() {
        if target < p {
            tok = c;
            break;
        }
        target -= p;
    }
    Ok(tok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scaled_sampler_draws_in_range_and_follows_weights() {
        let row = [0.0, 0.0, 10.0, 0.0];
        let mut weights = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        for _ in 0..50 {
            let t = sample_scaled_softmax(&row, 1.0, &mut weights, &mut rng).expect("finite");
            assert!(t < 4);
            if t == 2 {
                hits += 1;
            }
        }
        assert!(hits >= 48, "dominant logit drawn only {hits}/50 times");
    }

    #[test]
    fn degenerate_scaled_softmax_is_a_typed_error() {
        let row = [f64::NEG_INFINITY; 4];
        let mut weights = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        let err = sample_scaled_softmax(&row, 1.0, &mut weights, &mut rng).unwrap_err();
        assert!(matches!(err, FairGenError::Generate { .. }), "got {err}");
    }

    #[test]
    fn degenerate_prob_softmax_is_a_typed_error() {
        let row = [f64::NEG_INFINITY; 3];
        let mut probs = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        let err = sample_softmax_probs(&row, 2.0, &mut probs, &mut rng).unwrap_err();
        assert!(matches!(err, FairGenError::Generate { .. }), "got {err}");
    }

    #[test]
    fn empty_row_is_a_typed_error_not_an_underflow() {
        let mut scratch = Vec::new();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_scaled_softmax(&[], 1.0, &mut scratch, &mut rng).is_err());
        assert!(sample_softmax_probs(&[], 1.0, &mut scratch, &mut rng).is_err());
    }

    #[test]
    fn prob_sampler_respects_temperature_scaling() {
        // At a very low temperature the argmax dominates.
        let row = [1.0, 2.0, 0.5];
        let mut probs = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let t = sample_softmax_probs(&row, 50.0, &mut probs, &mut rng).expect("finite");
            assert_eq!(t, 1);
        }
    }
}
