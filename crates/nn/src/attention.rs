//! Causal multi-head self-attention over a single sequence.

use rand::Rng;

use crate::mat::Mat;
use crate::param::{HasParams, Param};
use crate::softmax::softmax_rows;

/// Extracts the column block `[start, start+width)` of `m`.
fn col_block(m: &Mat, start: usize, width: usize) -> Mat {
    Mat::from_fn(m.rows(), width, |r, c| m.get(r, start + c))
}

/// Adds `block` into columns `[start, ..)` of `m`.
fn add_col_block(m: &mut Mat, start: usize, block: &Mat) {
    for r in 0..block.rows() {
        for c in 0..block.cols() {
            let cur = m.get(r, start + c);
            m.set(r, start + c, cur + block.get(r, c));
        }
    }
}

/// Causal multi-head self-attention: `Y = concat_h(softmax(mask(Q_h K_hᵀ /
/// √d_h)) V_h) · W_o` with `Q = X W_q`, `K = X W_k`, `V = X W_v`.
///
/// Operates on one sequence (`X: T × d_model`) at a time; the training loops
/// in this workspace batch by iterating walks, which at walk length 10 and
/// `d_model ≤ 64` is fast enough on a CPU.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    /// Query projection (`d × d`).
    pub wq: Param,
    /// Key projection (`d × d`).
    pub wk: Param,
    /// Value projection (`d × d`).
    pub wv: Param,
    /// Output projection (`d × d`).
    pub wo: Param,
    heads: usize,
    cache: Option<AttnCache>,
}

#[derive(Clone, Debug)]
struct AttnCache {
    x: Mat,
    q: Mat,
    k: Mat,
    v: Mat,
    attn: Vec<Mat>, // per-head attention weights (T × T)
    concat: Mat,    // pre-Wo head outputs (T × d)
}

impl MultiHeadAttention {
    /// Creates an attention layer.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(d_model: usize, heads: usize, rng: &mut R) -> Self {
        assert!(heads > 0 && d_model.is_multiple_of(heads), "d_model must divide by heads");
        MultiHeadAttention {
            wq: Param::new(Mat::xavier(d_model, d_model, rng)),
            wk: Param::new(Mat::xavier(d_model, d_model, rng)),
            wv: Param::new(Mat::xavier(d_model, d_model, rng)),
            wo: Param::new(Mat::xavier(d_model, d_model, rng)),
            heads,
            cache: None,
        }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.wq.value.rows()
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Forward pass with causal masking, caching activations.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let d = self.d_model();
        assert_eq!(x.cols(), d, "input width mismatch");
        let t = x.rows();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f64).sqrt();
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let mut concat = Mat::zeros(t, d);
        let mut attn_weights = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = col_block(&q, h * dh, dh);
            let kh = col_block(&k, h * dh, dh);
            let vh = col_block(&v, h * dh, dh);
            let mut scores = qh.matmul_nt(&kh);
            scores.scale(scale);
            // Causal mask: position i attends only to j ≤ i.
            for i in 0..t {
                for j in (i + 1)..t {
                    scores.set(i, j, f64::NEG_INFINITY);
                }
            }
            let a = softmax_rows(&scores);
            let oh = a.matmul(&vh);
            add_col_block(&mut concat, h * dh, &oh);
            attn_weights.push(a);
        }
        let y = concat.matmul(&self.wo.value);
        self.cache = Some(AttnCache { x: x.clone(), q, k, v, attn: attn_weights, concat });
        y
    }

    /// Backward pass: accumulates weight gradients and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MultiHeadAttention::forward`].
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let cache = self.cache.take().expect("backward before forward");
        let d = self.d_model();
        let t = dy.rows();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f64).sqrt();

        // Y = concat · Wo
        self.wo.grad.add_assign(&cache.concat.matmul_tn(dy));
        let dconcat = dy.matmul_nt(&self.wo.value);

        let mut dq = Mat::zeros(t, d);
        let mut dk = Mat::zeros(t, d);
        let mut dv = Mat::zeros(t, d);
        for h in 0..self.heads {
            let a = &cache.attn[h];
            let qh = col_block(&cache.q, h * dh, dh);
            let kh = col_block(&cache.k, h * dh, dh);
            let vh = col_block(&cache.v, h * dh, dh);
            let doh = col_block(&dconcat, h * dh, dh);
            // O_h = A V_h
            let da = doh.matmul_nt(&vh);
            let dvh = a.matmul_tn(&doh);
            // Softmax backward per row: dS = A ⊙ (dA − Σ_j dA_j A_j).
            let mut ds = Mat::zeros(t, t);
            for i in 0..t {
                let mut dot = 0.0;
                for j in 0..t {
                    dot += da.get(i, j) * a.get(i, j);
                }
                for j in 0..t {
                    ds.set(i, j, a.get(i, j) * (da.get(i, j) - dot));
                }
            }
            ds.scale(scale);
            // S = Q_h K_hᵀ (scaled): dQ_h = dS K_h ; dK_h = dSᵀ Q_h.
            let dqh = ds.matmul(&kh);
            let dkh = ds.matmul_tn(&qh);
            add_col_block(&mut dq, h * dh, &dqh);
            add_col_block(&mut dk, h * dh, &dkh);
            add_col_block(&mut dv, h * dh, &dvh);
        }

        // Q = X Wq etc.
        self.wq.grad.add_assign(&cache.x.matmul_tn(&dq));
        self.wk.grad.add_assign(&cache.x.matmul_tn(&dk));
        self.wv.grad.add_assign(&cache.x.matmul_tn(&dv));
        let mut dx = dq.matmul_nt(&self.wq.value);
        dx.add_assign(&dk.matmul_nt(&self.wk.value));
        dx.add_assign(&dv.matmul_nt(&self.wv.value));
        dx
    }
}

impl HasParams for MultiHeadAttention {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

impl fairgen_graph::Codec for MultiHeadAttention {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.heads);
        for p in [&self.wq, &self.wk, &self.wv, &self.wo] {
            fairgen_graph::Codec::encode(p, enc);
        }
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let heads = dec.take_usize()?;
        let wq = <Param as fairgen_graph::Codec>::decode(dec)?;
        let wk = <Param as fairgen_graph::Codec>::decode(dec)?;
        let wv = <Param as fairgen_graph::Codec>::decode(dec)?;
        let wo = <Param as fairgen_graph::Codec>::decode(dec)?;
        let d = wq.value.rows();
        if heads == 0 || !d.is_multiple_of(heads) {
            return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                detail: format!("attention width {d} not divisible by {heads} heads"),
            });
        }
        for (p, what) in [(&wq, "wq"), (&wk, "wk"), (&wv, "wv"), (&wo, "wo")] {
            crate::mat::check_shape(&p.value, d, d, what)?;
        }
        Ok(MultiHeadAttention { wq, wk, wv, wo, heads, cache: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(t: usize, d: usize) -> Mat {
        Mat::from_fn(t, d, |r, c| ((r * d + c) as f64 * 0.61).sin() * 0.5)
    }

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let y = attn.forward(&input(5, 8));
        assert_eq!((y.rows(), y.cols()), (5, 8));
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x1 = input(6, 8);
        let mut x2 = x1.clone();
        // Perturb the final position only.
        for c in 0..8 {
            x2.set(5, c, x2.get(5, c) + 10.0);
        }
        let y1 = attn.forward(&x1);
        let y2 = attn.forward(&x2);
        for r in 0..5 {
            for c in 0..8 {
                assert!(
                    (y1.get(r, c) - y2.get(r, c)).abs() < 1e-12,
                    "position {r} changed when only position 5 differed"
                );
            }
        }
    }

    #[test]
    fn attention_rows_sum_to_one_over_prefix() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(4, 1, &mut rng);
        let _ = attn.forward(&input(4, 4));
        let a = &attn.cache.as_ref().unwrap().attn[0];
        for i in 0..4 {
            let sum: f64 = a.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for j in (i + 1)..4 {
                assert_eq!(a.get(i, j), 0.0, "future weight nonzero");
            }
        }
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = input(4, 6);
        let mut attn = MultiHeadAttention::new(6, 2, &mut rng);
        check_param_gradients(
            &mut attn,
            |a| {
                let y = a.forward(&x);
                let loss = 0.5 * y.sq_norm();
                a.backward(&y);
                loss
            },
            1e-5,
            1e-4,
        );
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(4, 2, &mut rng);
        let x0 = input(3, 4);
        let y = attn.forward(&x0);
        let dx = attn.backward(&y.clone());
        let eps = 1e-6;
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut xp = x0.clone();
                xp.set(r, c, x0.get(r, c) + eps);
                let mut xm = x0.clone();
                xm.set(r, c, x0.get(r, c) - eps);
                let lp = 0.5 * attn.forward(&xp).sq_norm();
                let lm = 0.5 * attn.forward(&xm).sq_norm();
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-5,
                    "dx({r},{c}): numeric {num} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide by heads")]
    fn indivisible_heads_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = MultiHeadAttention::new(6, 4, &mut rng);
    }
}
