//! Causal multi-head self-attention over a single sequence.

use rand::Rng;

use crate::mat::{vecmat_into, Mat};
use crate::param::{HasParams, Param};
use crate::softmax::softmax_slice;

/// Causal multi-head self-attention: `Y = concat_h(softmax(mask(Q_h K_hᵀ /
/// √d_h)) V_h) · W_o` with `Q = X W_q`, `K = X W_k`, `V = X W_v`.
///
/// Operates on one sequence (`X: T × d_model`) at a time; the training loops
/// in this workspace batch by iterating walks, which at walk length 10 and
/// `d_model ≤ 64` is fast enough on a CPU.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    /// Query projection (`d × d`).
    pub wq: Param,
    /// Key projection (`d × d`).
    pub wk: Param,
    /// Value projection (`d × d`).
    pub wv: Param,
    /// Output projection (`d × d`).
    pub wo: Param,
    heads: usize,
    cache: Option<AttnCache>,
}

#[derive(Clone, Debug)]
struct AttnCache {
    /// The layer input, taken by value in [`MultiHeadAttention::forward`]
    /// (the caller hands over its owned activation, so caching it costs no
    /// clone).
    x: Mat,
    q: Mat,
    k: Mat,
    v: Mat,
    attn: Vec<Mat>, // per-head attention weights (T × T, zero above diagonal)
    concat: Mat,    // pre-Wo head outputs (T × d)
}

/// Per-sequence key/value cache plus scratch for one attention layer's
/// incremental decode path ([`MultiHeadAttention::step`]). Rows `0..pos` of
/// `k`/`v` hold the projections of the already-consumed prefix.
#[derive(Clone, Debug)]
pub struct KvCache {
    pub(crate) k: Mat,
    pub(crate) v: Mat,
    q: Vec<f64>,
    scores: Vec<f64>,
    concat: Vec<f64>,
}

impl KvCache {
    pub(crate) fn new(max_len: usize, d_model: usize) -> Self {
        KvCache {
            k: Mat::zeros(max_len, d_model),
            v: Mat::zeros(max_len, d_model),
            q: vec![0.0; d_model],
            scores: vec![0.0; max_len],
            concat: vec![0.0; d_model],
        }
    }
}

/// Reusable scratch for [`MultiHeadAttention::step_batch`]: the projected
/// Q/K/V rows of every active walk plus their pre-`W_o` head outputs, all
/// `width × d_model`. One allocation serves a whole batched decode session.
#[derive(Clone, Debug)]
pub struct AttnBatchScratch {
    q: Mat,
    k: Mat,
    v: Mat,
    concat: Mat,
}

impl AttnBatchScratch {
    /// Scratch for batches of up to `width` concurrent walks at model
    /// width `d_model`.
    pub fn new(width: usize, d_model: usize) -> Self {
        AttnBatchScratch {
            q: Mat::zeros(width, d_model),
            k: Mat::zeros(width, d_model),
            v: Mat::zeros(width, d_model),
            concat: Mat::zeros(width, d_model),
        }
    }

    /// The batch width this scratch was sized for.
    pub fn width(&self) -> usize {
        self.q.rows()
    }
}

impl MultiHeadAttention {
    /// Creates an attention layer.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(d_model: usize, heads: usize, rng: &mut R) -> Self {
        assert!(heads > 0 && d_model.is_multiple_of(heads), "d_model must divide by heads");
        MultiHeadAttention {
            wq: Param::new(Mat::xavier(d_model, d_model, rng)),
            wk: Param::new(Mat::xavier(d_model, d_model, rng)),
            wv: Param::new(Mat::xavier(d_model, d_model, rng)),
            wo: Param::new(Mat::xavier(d_model, d_model, rng)),
            heads,
            cache: None,
        }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.wq.value.rows()
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Forward pass with causal masking, caching activations.
    ///
    /// Takes the input by value: the caller's owned activation moves into
    /// the backward cache, so nothing is cloned. Head blocks are walked as
    /// column slices of the shared Q/K/V matrices — no per-head copies —
    /// and scores are only ever computed over the causal prefix `j ≤ i`
    /// (masked weights stay exactly `0.0` in the cached attention
    /// matrices).
    pub fn forward(&mut self, x: Mat) -> Mat {
        let d = self.d_model();
        assert_eq!(x.cols(), d, "input width mismatch");
        let t = x.rows();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f64).sqrt();
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let mut concat = Mat::zeros(t, d);
        let mut attn_weights = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let h0 = h * dh;
            let mut a = Mat::zeros(t, t);
            for i in 0..t {
                let a_row = a.row_mut(i);
                let q_row = &q.row(i)[h0..h0 + dh];
                for (j, slot) in a_row.iter_mut().enumerate().take(i + 1) {
                    let k_row = &k.row(j)[h0..h0 + dh];
                    let mut acc = 0.0;
                    for (qa, kb) in q_row.iter().zip(k_row) {
                        acc += qa * kb;
                    }
                    *slot = acc * scale;
                }
                softmax_slice(&mut a_row[..=i]);
            }
            for i in 0..t {
                let c_row = &mut concat.row_mut(i)[h0..h0 + dh];
                for j in 0..=i {
                    let w = a.get(i, j);
                    let v_row = &v.row(j)[h0..h0 + dh];
                    for (o, &vv) in c_row.iter_mut().zip(v_row) {
                        *o += w * vv;
                    }
                }
            }
            attn_weights.push(a);
        }
        let y = concat.matmul(&self.wo.value);
        self.cache = Some(AttnCache { x, q, k, v, attn: attn_weights, concat });
        y
    }

    /// One incremental decode step: projects `x` (this position's
    /// post-norm input row), appends its K/V rows to `cache` at row `pos`,
    /// and attends the new query over the cached prefix — no T×T score
    /// matrix, no causal-mask loop. Writes the attention output row into
    /// `out`. Bit-exact with row `pos` of [`MultiHeadAttention::forward`]
    /// over the same prefix.
    pub fn step(&self, x: &[f64], pos: usize, cache: &mut KvCache, out: &mut [f64]) {
        let d = self.d_model();
        assert_eq!(x.len(), d, "input width mismatch");
        assert!(pos < cache.k.rows(), "decode position {pos} past cache capacity");
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f64).sqrt();
        let KvCache { k, v, q, scores, concat } = cache;
        vecmat_into(x, &self.wq.value, q);
        vecmat_into(x, &self.wk.value, k.row_mut(pos));
        vecmat_into(x, &self.wv.value, v.row_mut(pos));
        for h in 0..self.heads {
            let h0 = h * dh;
            let q_row = &q[h0..h0 + dh];
            for (j, slot) in scores.iter_mut().enumerate().take(pos + 1) {
                let k_row = &k.row(j)[h0..h0 + dh];
                let mut acc = 0.0;
                for (qa, kb) in q_row.iter().zip(k_row) {
                    acc += qa * kb;
                }
                *slot = acc * scale;
            }
            softmax_slice(&mut scores[..=pos]);
            let c_seg = &mut concat[h0..h0 + dh];
            c_seg.iter_mut().for_each(|o| *o = 0.0);
            for (j, &w) in scores.iter().enumerate().take(pos + 1) {
                let v_row = &v.row(j)[h0..h0 + dh];
                for (o, &vv) in c_seg.iter_mut().zip(v_row) {
                    *o += w * vv;
                }
            }
        }
        vecmat_into(concat, &self.wo.value, out);
    }

    /// Batched incremental decode step over the first `m` rows of `x` (one
    /// row per active walk, all at position `pos`): three prefix GEMMs
    /// project Q/K/V for every walk at once, each walk's new K/V row lands
    /// in its own cache, the per-walk prefix attention runs exactly as
    /// [`MultiHeadAttention::step`] does, and one GEMM applies `W_o` to all
    /// head outputs. Row `i` of `out` is bit-exact with a
    /// [`MultiHeadAttention::step`] call against `caches[i]` (the prefix
    /// GEMM accumulates ascending-`k` like `vecmat_into`).
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the cache count, the scratch width, or any
    /// cache's capacity at `pos`, or on a width mismatch.
    pub fn step_batch(
        &self,
        m: usize,
        pos: usize,
        x: &Mat,
        caches: &mut [KvCache],
        scratch: &mut AttnBatchScratch,
        out: &mut Mat,
    ) {
        let d = self.d_model();
        assert_eq!(x.cols(), d, "input width mismatch");
        assert!(m <= caches.len(), "batch exceeds cache count");
        assert!(m <= scratch.q.rows(), "batch exceeds scratch width");
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f64).sqrt();
        x.matmul_prefix_into(m, &self.wq.value, &mut scratch.q);
        x.matmul_prefix_into(m, &self.wk.value, &mut scratch.k);
        x.matmul_prefix_into(m, &self.wv.value, &mut scratch.v);
        for (i, cache) in caches.iter_mut().enumerate().take(m) {
            assert!(pos < cache.k.rows(), "decode position {pos} past cache capacity");
            cache.k.row_mut(pos).copy_from_slice(scratch.k.row(i));
            cache.v.row_mut(pos).copy_from_slice(scratch.v.row(i));
            let q_all = scratch.q.row(i);
            let c_row = scratch.concat.row_mut(i);
            let KvCache { k, v, scores, .. } = cache;
            for h in 0..self.heads {
                let h0 = h * dh;
                let q_row = &q_all[h0..h0 + dh];
                for (j, slot) in scores.iter_mut().enumerate().take(pos + 1) {
                    let k_row = &k.row(j)[h0..h0 + dh];
                    let mut acc = 0.0;
                    for (qa, kb) in q_row.iter().zip(k_row) {
                        acc += qa * kb;
                    }
                    *slot = acc * scale;
                }
                softmax_slice(&mut scores[..=pos]);
                let c_seg = &mut c_row[h0..h0 + dh];
                c_seg.iter_mut().for_each(|o| *o = 0.0);
                for (j, &w) in scores.iter().enumerate().take(pos + 1) {
                    let v_row = &v.row(j)[h0..h0 + dh];
                    for (o, &vv) in c_seg.iter_mut().zip(v_row) {
                        *o += w * vv;
                    }
                }
            }
        }
        scratch.concat.matmul_prefix_into(m, &self.wo.value, out);
    }

    /// Backward pass: accumulates weight gradients and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MultiHeadAttention::forward`].
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let cache = self.cache.take().expect("backward before forward");
        let d = self.d_model();
        let t = dy.rows();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f64).sqrt();

        // Y = concat · Wo
        self.wo.grad.add_assign(&cache.concat.matmul_tn(dy));
        let dconcat = dy.matmul_nt(&self.wo.value);

        let mut dq = Mat::zeros(t, d);
        let mut dk = Mat::zeros(t, d);
        let mut dv = Mat::zeros(t, d);
        // One score-gradient scratch shared across heads; only the causal
        // triangle `j ≤ i` is ever written and read.
        let mut ds = Mat::zeros(t, t);
        for h in 0..self.heads {
            let h0 = h * dh;
            let a = &cache.attn[h];
            for i in 0..t {
                let do_row = &dconcat.row(i)[h0..h0 + dh];
                // dA_ij = ⟨dO_i, V_j⟩ over the causal prefix, then softmax
                // backward per row: dS = A ⊙ (dA − Σ_j dA_j A_j).
                let mut dot = 0.0;
                let ds_row = ds.row_mut(i);
                for (j, slot) in ds_row.iter_mut().enumerate().take(i + 1) {
                    let v_row = &cache.v.row(j)[h0..h0 + dh];
                    let mut da = 0.0;
                    for (&g, &vv) in do_row.iter().zip(v_row) {
                        da += g * vv;
                    }
                    dot += da * a.get(i, j);
                    *slot = da;
                }
                for (j, slot) in ds_row.iter_mut().enumerate().take(i + 1) {
                    *slot = a.get(i, j) * (*slot - dot) * scale;
                }
            }
            // S = Q_h K_hᵀ (scaled): dQ_h = dS K_h ; dK_h = dSᵀ Q_h ;
            // O_h = A V_h: dV_h = Aᵀ dO_h. All written straight into the
            // head's column slice of the shared gradient matrices.
            for i in 0..t {
                let do_row = &dconcat.row(i)[h0..h0 + dh];
                for j in 0..=i {
                    let s = ds.get(i, j);
                    let w = a.get(i, j);
                    {
                        let dq_row = &mut dq.row_mut(i)[h0..h0 + dh];
                        let k_row = &cache.k.row(j)[h0..h0 + dh];
                        for (o, &kv) in dq_row.iter_mut().zip(k_row) {
                            *o += s * kv;
                        }
                    }
                    {
                        let dk_row = &mut dk.row_mut(j)[h0..h0 + dh];
                        let q_row = &cache.q.row(i)[h0..h0 + dh];
                        for (o, &qv) in dk_row.iter_mut().zip(q_row) {
                            *o += s * qv;
                        }
                    }
                    {
                        let dv_row = &mut dv.row_mut(j)[h0..h0 + dh];
                        for (o, &g) in dv_row.iter_mut().zip(do_row) {
                            *o += w * g;
                        }
                    }
                }
            }
        }

        // Q = X Wq etc.
        self.wq.grad.add_assign(&cache.x.matmul_tn(&dq));
        self.wk.grad.add_assign(&cache.x.matmul_tn(&dk));
        self.wv.grad.add_assign(&cache.x.matmul_tn(&dv));
        let mut dx = dq.matmul_nt(&self.wq.value);
        dx.add_assign(&dk.matmul_nt(&self.wk.value));
        dx.add_assign(&dv.matmul_nt(&self.wv.value));
        dx
    }
}

impl HasParams for MultiHeadAttention {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

impl fairgen_graph::Codec for MultiHeadAttention {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.heads);
        for p in [&self.wq, &self.wk, &self.wv, &self.wo] {
            fairgen_graph::Codec::encode(p, enc);
        }
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let heads = dec.take_usize()?;
        let wq = <Param as fairgen_graph::Codec>::decode(dec)?;
        let wk = <Param as fairgen_graph::Codec>::decode(dec)?;
        let wv = <Param as fairgen_graph::Codec>::decode(dec)?;
        let wo = <Param as fairgen_graph::Codec>::decode(dec)?;
        let d = wq.value.rows();
        if heads == 0 || !d.is_multiple_of(heads) {
            return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                detail: format!("attention width {d} not divisible by {heads} heads"),
            });
        }
        for (p, what) in [(&wq, "wq"), (&wk, "wk"), (&wv, "wv"), (&wo, "wo")] {
            crate::mat::check_shape(&p.value, d, d, what)?;
        }
        Ok(MultiHeadAttention { wq, wk, wv, wo, heads, cache: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(t: usize, d: usize) -> Mat {
        Mat::from_fn(t, d, |r, c| ((r * d + c) as f64 * 0.61).sin() * 0.5)
    }

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let y = attn.forward(input(5, 8));
        assert_eq!((y.rows(), y.cols()), (5, 8));
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x1 = input(6, 8);
        let mut x2 = x1.clone();
        // Perturb the final position only.
        for c in 0..8 {
            x2.set(5, c, x2.get(5, c) + 10.0);
        }
        let y1 = attn.forward(x1.clone());
        let y2 = attn.forward(x2);
        for r in 0..5 {
            for c in 0..8 {
                assert!(
                    (y1.get(r, c) - y2.get(r, c)).abs() < 1e-12,
                    "position {r} changed when only position 5 differed"
                );
            }
        }
    }

    #[test]
    fn attention_rows_sum_to_one_over_prefix() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(4, 1, &mut rng);
        let _ = attn.forward(input(4, 4));
        let a = &attn.cache.as_ref().unwrap().attn[0];
        for i in 0..4 {
            let sum: f64 = a.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for j in (i + 1)..4 {
                assert_eq!(a.get(i, j), 0.0, "future weight nonzero");
            }
        }
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = input(4, 6);
        let mut attn = MultiHeadAttention::new(6, 2, &mut rng);
        check_param_gradients(
            &mut attn,
            |a| {
                let y = a.forward(x.clone());
                let loss = 0.5 * y.sq_norm();
                a.backward(&y);
                loss
            },
            1e-5,
            1e-4,
        );
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(4, 2, &mut rng);
        let x0 = input(3, 4);
        let y = attn.forward(x0.clone());
        let dx = attn.backward(&y.clone());
        let eps = 1e-6;
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut xp = x0.clone();
                xp.set(r, c, x0.get(r, c) + eps);
                let mut xm = x0.clone();
                xm.set(r, c, x0.get(r, c) - eps);
                let lp = 0.5 * attn.forward(xp).sq_norm();
                let lm = 0.5 * attn.forward(xm).sq_norm();
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-5,
                    "dx({r},{c}): numeric {num} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide by heads")]
    fn indivisible_heads_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = MultiHeadAttention::new(6, 4, &mut rng);
    }
}
