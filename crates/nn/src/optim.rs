//! Optimizers: SGD and Adam, plus global gradient-norm clipping.

use crate::param::{HasParams, Param};

/// Plain stochastic gradient descent (paper Section II-C, step 10).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }

    /// Applies one descent step to every parameter of `model`.
    pub fn step(&self, model: &mut dyn HasParams) {
        let lr = self.lr;
        model.for_each_param(&mut |p: &mut Param| {
            let g = p.grad.clone();
            p.value.add_scaled(&g, -lr);
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam step to every parameter of `model`.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        self.t += 1;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        model.for_each_param(&mut |p: &mut Param| {
            let n = p.value.len();
            let g = p.grad.as_slice().to_vec();
            let m = p.m.as_mut_slice();
            for i in 0..n {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            }
            let m_snapshot = p.m.as_slice().to_vec();
            let v = p.v.as_mut_slice();
            for i in 0..n {
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            }
            let v_snapshot = p.v.as_slice().to_vec();
            let val = p.value.as_mut_slice();
            for i in 0..n {
                let m_hat = m_snapshot[i] / bc1;
                let v_hat = v_snapshot[i] / bc2;
                val[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

/// Clips the global gradient norm of `model` to `max_norm`; returns the
/// pre-clip norm.
pub fn clip_gradients(model: &mut dyn HasParams, max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0;
    model.for_each_param(&mut |p: &mut Param| sq += p.grad.sq_norm());
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        model.for_each_param(&mut |p: &mut Param| p.grad.scale(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    /// A 1-D quadratic probe: loss = ½‖x − target‖².
    struct Quadratic {
        x: Param,
        target: Vec<f64>,
    }

    impl Quadratic {
        fn new(start: Vec<f64>, target: Vec<f64>) -> Self {
            let n = start.len();
            Quadratic { x: Param::new(Mat::from_vec(1, n, start)), target }
        }

        fn loss(&self) -> f64 {
            self.x
                .value
                .as_slice()
                .iter()
                .zip(&self.target)
                .map(|(x, t)| 0.5 * (x - t) * (x - t))
                .sum()
        }

        fn compute_grad(&mut self) {
            let g: Vec<f64> =
                self.x.value.as_slice().iter().zip(&self.target).map(|(x, t)| x - t).collect();
            self.x.grad = Mat::from_vec(1, g.len(), g);
        }
    }

    impl HasParams for Quadratic {
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.x);
        }
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut q = Quadratic::new(vec![5.0, -3.0], vec![1.0, 1.0]);
        let opt = Sgd::new(0.1);
        let initial = q.loss();
        for _ in 0..200 {
            q.compute_grad();
            opt.step(&mut q);
        }
        assert!(q.loss() < 1e-6 * initial.max(1.0), "final loss {}", q.loss());
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut q = Quadratic::new(vec![5.0, -3.0, 10.0], vec![0.0, 2.0, -1.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            q.compute_grad();
            opt.step(&mut q);
        }
        assert!(q.loss() < 1e-6, "final loss {}", q.loss());
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_handles_scale_disparity_better_than_sgd_step_count() {
        // Badly scaled quadratic: Adam normalizes per-coordinate.
        let mut q = Quadratic::new(vec![100.0, 0.01], vec![0.0, 0.0]);
        let mut opt = Adam::new(0.5);
        for _ in 0..1500 {
            q.compute_grad();
            opt.step(&mut q);
        }
        assert!(q.loss() < 1e-4, "final loss {}", q.loss());
    }

    #[test]
    fn clip_reduces_large_gradient() {
        let mut q = Quadratic::new(vec![1000.0], vec![0.0]);
        q.compute_grad();
        let pre = clip_gradients(&mut q, 1.0);
        assert!((pre - 1000.0).abs() < 1e-9);
        let mut post_sq = 0.0;
        q.for_each_param(&mut |p| post_sq += p.grad.sq_norm());
        assert!((post_sq.sqrt() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clip_leaves_small_gradient() {
        let mut q = Quadratic::new(vec![0.5], vec![0.0]);
        q.compute_grad();
        clip_gradients(&mut q, 10.0);
        let mut sq = 0.0;
        q.for_each_param(&mut |p| sq += p.grad.sq_norm());
        assert!((sq.sqrt() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }
}
