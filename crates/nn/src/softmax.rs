//! Softmax, log-softmax, and cross-entropy with analytic gradients.

use crate::mat::Mat;

/// Row-wise numerically stable softmax.
pub fn softmax_rows(x: &Mat) -> Mat {
    let mut out = Mat::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        let out_row = out.row_mut(r);
        for (o, &v) in out_row.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        for o in out_row.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// In-place numerically stable softmax over a slice — one row of
/// [`softmax_rows`], bit-for-bit. Shared by the batched attention forward
/// and the KV-cached decode step so the two stay exactly consistent.
pub fn softmax_slice(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for o in row.iter_mut() {
        let e = (*o - max).exp();
        *o = e;
        sum += e;
    }
    for o in row.iter_mut() {
        *o /= sum;
    }
}

/// Row-wise numerically stable log-softmax.
pub fn log_softmax(x: &Mat) -> Mat {
    let mut out = Mat::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f64>().ln();
        let out_row = out.row_mut(r);
        for (o, &v) in out_row.iter_mut().zip(row) {
            *o = v - lse;
        }
    }
    out
}

/// Mean cross-entropy of `logits` (`B × C`) against integer `targets`,
/// with optional per-example weights. Returns `(loss, dlogits)` where
/// `dlogits` is the gradient of the (weighted-mean) loss.
///
/// # Panics
///
/// Panics on length mismatches or out-of-range targets.
pub fn cross_entropy(logits: &Mat, targets: &[usize], weights: Option<&[f64]>) -> (f64, Mat) {
    assert_eq!(logits.rows(), targets.len(), "target count mismatch");
    if let Some(w) = weights {
        assert_eq!(w.len(), targets.len(), "weight count mismatch");
    }
    let b = logits.rows();
    assert!(b > 0, "empty batch");
    let probs = softmax_rows(logits);
    let total_weight: f64 = weights.map_or(b as f64, |w| w.iter().sum());
    assert!(total_weight > 0.0, "total weight must be positive");
    let mut loss = 0.0;
    let mut dlogits = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target {t} out of range");
        let w = weights.map_or(1.0, |w| w[r]);
        let p = probs.get(r, t).max(1e-300);
        loss -= w * p.ln();
        // d/dlogits of -w·log p_t = w(p - onehot_t); normalize by total weight.
        let row = dlogits.row_mut(r);
        for v in row.iter_mut() {
            *v *= w / total_weight;
        }
        row[t] -= w / total_weight;
    }
    (loss / total_weight, dlogits)
}

/// Mean *unlikelihood* loss `−log(1 − p_target)` of `logits` against
/// `targets` — the bounded-gradient way to push probability mass *away*
/// from observed negative sequences (Welleck et al.). Returns
/// `(loss, dlogits)`.
///
/// # Panics
///
/// Panics on length mismatches or out-of-range targets.
pub fn unlikelihood(logits: &Mat, targets: &[usize]) -> (f64, Mat) {
    assert_eq!(logits.rows(), targets.len(), "target count mismatch");
    let b = logits.rows();
    assert!(b > 0, "empty batch");
    let probs = softmax_rows(logits);
    let mut loss = 0.0;
    let mut dlogits = Mat::zeros(logits.rows(), logits.cols());
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target {t} out of range");
        let p = probs.get(r, t).min(1.0 - 1e-8);
        loss -= (1.0 - p).ln();
        // d(−log(1−p_t))/dz_j = p_t (δ_tj − p_j) / (1 − p_t).
        let coef = p / (1.0 - p) / b as f64;
        for j in 0..logits.cols() {
            let delta = if j == t { 1.0 } else { 0.0 };
            dlogits.set(r, j, coef * (delta - probs.get(r, j)));
        }
    }
    (loss / b as f64, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(s.row(r).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Mat::from_vec(1, 2, vec![1000.0, 1001.0]);
        let s = softmax_rows(&x);
        assert!(s.row(0).iter().all(|p| p.is_finite()));
        assert!(s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let x = Mat::from_vec(1, 4, vec![0.3, -1.2, 2.0, 0.0]);
        let ls = log_softmax(&x);
        let s = softmax_rows(&x);
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Mat::zeros(3, 5);
        let (loss, _) = cross_entropy(&logits, &[0, 2, 4], None);
        assert!((loss - (5.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits0 = Mat::from_vec(2, 3, vec![0.5, -0.3, 1.2, 0.0, 0.7, -1.0]);
        let targets = [2usize, 1];
        let weights = [1.0, 3.0];
        let (_, grad) = cross_entropy(&logits0, &targets, Some(&weights));
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits0.clone();
                lp.set(r, c, logits0.get(r, c) + eps);
                let mut lm = logits0.clone();
                lm.set(r, c, logits0.get(r, c) - eps);
                let (loss_p, _) = cross_entropy(&lp, &targets, Some(&weights));
                let (loss_m, _) = cross_entropy(&lm, &targets, Some(&weights));
                let num = (loss_p - loss_m) / (2.0 * eps);
                assert!(
                    (num - grad.get(r, c)).abs() < 1e-8,
                    "({r},{c}): numeric {num} vs analytic {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn weighted_ce_prioritizes_heavy_examples() {
        // Example 0 confidently wrong, example 1 confidently right.
        let logits = Mat::from_vec(2, 2, vec![3.0, -3.0, -3.0, 3.0]);
        let targets = [1usize, 1];
        let (balanced, _) = cross_entropy(&logits, &targets, None);
        let (heavy_wrong, _) = cross_entropy(&logits, &targets, Some(&[10.0, 1.0]));
        let (heavy_right, _) = cross_entropy(&logits, &targets, Some(&[1.0, 10.0]));
        assert!(heavy_wrong > balanced);
        assert!(heavy_right < balanced);
    }

    #[test]
    fn unlikelihood_gradient_matches_finite_differences() {
        let logits0 = Mat::from_vec(2, 3, vec![0.5, -0.3, 1.2, 0.0, 0.7, -1.0]);
        let targets = [2usize, 0];
        let (_, grad) = unlikelihood(&logits0, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits0.clone();
                lp.set(r, c, logits0.get(r, c) + eps);
                let mut lm = logits0.clone();
                lm.set(r, c, logits0.get(r, c) - eps);
                let (loss_p, _) = unlikelihood(&lp, &targets);
                let (loss_m, _) = unlikelihood(&lm, &targets);
                let num = (loss_p - loss_m) / (2.0 * eps);
                assert!(
                    (num - grad.get(r, c)).abs() < 1e-7,
                    "({r},{c}): numeric {num} vs analytic {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn unlikelihood_small_for_unlikely_targets() {
        // Target already improbable → tiny loss and gradient.
        let logits = Mat::from_vec(1, 2, vec![10.0, -10.0]);
        let (loss, grad) = unlikelihood(&logits, &[1]);
        assert!(loss < 1e-6);
        assert!(grad.sq_norm() < 1e-8);
        // Target highly probable → large (but finite) loss.
        let (loss2, grad2) = unlikelihood(&logits, &[0]);
        assert!(loss2 > 5.0 && loss2.is_finite());
        assert!(grad2.sq_norm().is_finite());
    }

    #[test]
    #[should_panic(expected = "target count mismatch")]
    fn mismatched_targets_panic() {
        let _ = cross_entropy(&Mat::zeros(2, 2), &[0], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_target_panics() {
        let _ = cross_entropy(&Mat::zeros(1, 2), &[2], None);
    }
}
