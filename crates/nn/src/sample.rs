//! Multi-core walk sampling over the incremental decoders.
//!
//! PR 3 made per-token decoding cheap (KV caches / carried LSTM state);
//! the remaining lever on the sampling hot path is fanning whole walks out
//! across cores. [`sample_walk_batch`] does that over a
//! [`fairgen_par::ThreadPool`] with **one decode state per worker** and one
//! per-walk replayed RNG stream, and is **bit-identical to the sequential
//! sampling loop** for any worker count:
//!
//! * Both samplers ([`crate::decode::sample_scaled_softmax`],
//!   [`crate::decode::sample_softmax_probs`]) consume exactly one `u64` per
//!   token, so walk `i` of a sequential loop consumes draws
//!   `[i·len, (i+1)·len)` of the master stream. [`fairgen_par::predraw`]
//!   materializes that stream up front and each walk replays its own slice
//!   through a [`fairgen_par::ReplayRng`].
//! * Decode states are reset per walk, so which worker's state a walk lands
//!   on cannot influence its tokens (asserted by `tests/parallel_parity.rs`
//!   at widths {1, 2, 8}).

use fairgen_graph::error::Result;
use fairgen_par::{predraw, ReplayRng, ThreadPool};
use rand::{Rng, RngCore};

use crate::decode::DecodeState;
use crate::lstm::{LstmDecodeState, LstmLm};
use crate::transformer::TransformerLm;

/// A language model whose sampling runs against a caller-owned decode state
/// through `&self` — the hook [`sample_walk_batch`] fans out over.
///
/// Implementations must consume **exactly one `u64` from `rng` per sampled
/// token** (the contract that makes [`fairgen_par::predraw`]-based
/// parallelism bit-identical to sequential sampling) and must reset the
/// state on entry, so a state reused across walks — or migrated between
/// workers — cannot leak history into the output.
pub trait BatchSampler: Sync {
    /// Reusable per-sequence decoding state (one per worker).
    type State: Send;

    /// A fresh decode state sized for this model.
    fn make_state(&self) -> Self::State;

    /// Samples one sequence of `len` tokens against `state`.
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::Generate`] on a degenerate sampling
    /// distribution.
    fn sample_into<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>>;
}

impl BatchSampler for TransformerLm {
    type State = DecodeState;

    fn make_state(&self) -> DecodeState {
        self.decode_state()
    }

    fn sample_into<R: Rng + ?Sized>(
        &self,
        state: &mut DecodeState,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        self.sample_with(state, len, temperature, rng)
    }
}

impl BatchSampler for LstmLm {
    type State = LstmDecodeState;

    fn make_state(&self) -> LstmDecodeState {
        self.decode_state()
    }

    fn sample_into<R: Rng + ?Sized>(
        &self,
        state: &mut LstmDecodeState,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        self.sample_with(state, len, temperature, rng)
    }
}

/// Pre-draws the master stream for `count` walks of `len` tokens each —
/// advancing `rng` exactly as the sequential sampling loop would — and
/// returns it for [`sample_walk_batch`].
pub fn predraw_walks<R: RngCore + ?Sized>(rng: &mut R, count: usize, len: usize) -> Vec<u64> {
    predraw(rng, count * len)
}

/// Samples `count` walks of `len` tokens across `pool`, one decode state
/// per worker, walk `i` replaying `draws[i·len .. (i+1)·len]`. Output is
/// bit-identical to the sequential loop
/// `for i in 0..count { model.sample(len, temperature, &mut master_rng) }`
/// when `draws` came from [`predraw_walks`] on that master RNG — for any
/// pool width.
///
/// # Errors
///
/// The first (lowest-index) walk whose sampling degenerates reports its
/// [`fairgen_graph::FairGenError::Generate`].
///
/// # Panics
///
/// Panics if `draws.len() != count * len`.
pub fn sample_walk_batch<M: BatchSampler>(
    pool: &ThreadPool,
    model: &M,
    count: usize,
    len: usize,
    temperature: f64,
    draws: &[u64],
) -> Result<Vec<Vec<usize>>> {
    assert_eq!(draws.len(), count * len, "predraw budget disagrees with the walk batch");
    let walks = pool.par_map_init(
        count,
        || model.make_state(),
        |state, i| {
            let mut rng = ReplayRng::new(&draws[i * len..(i + 1) * len]);
            model.sample_into(state, len, temperature, &mut rng)
        },
    );
    walks.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::TransformerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_equals_sequential_for_both_families() {
        let mut rng = StdRng::seed_from_u64(2);
        let tf = TransformerLm::new(
            TransformerConfig { vocab: 9, d_model: 8, heads: 2, layers: 1, max_len: 8 },
            &mut rng,
        );
        let lstm = LstmLm::new(9, 6, 8, &mut rng);
        let pool = ThreadPool::new(2);
        let (count, len) = (12, 5);

        let mut seq_rng = StdRng::seed_from_u64(77);
        let mut state = tf.make_state();
        let sequential: Vec<Vec<usize>> = (0..count)
            .map(|_| tf.sample_with(&mut state, len, 1.0, &mut seq_rng).expect("sample"))
            .collect();
        let mut batch_rng = StdRng::seed_from_u64(77);
        let draws = predraw_walks(&mut batch_rng, count, len);
        let batch = sample_walk_batch(&pool, &tf, count, len, 1.0, &draws).expect("batch");
        assert_eq!(batch, sequential);

        let mut seq_rng = StdRng::seed_from_u64(78);
        let mut state = lstm.make_state();
        let sequential: Vec<Vec<usize>> = (0..count)
            .map(|_| lstm.sample_with(&mut state, len, 1.0, &mut seq_rng).expect("sample"))
            .collect();
        let mut batch_rng = StdRng::seed_from_u64(78);
        let draws = predraw_walks(&mut batch_rng, count, len);
        let batch = sample_walk_batch(&pool, &lstm, count, len, 1.0, &draws).expect("batch");
        assert_eq!(batch, sequential);
    }

    #[test]
    #[should_panic(expected = "predraw budget")]
    fn wrong_draw_budget_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = LstmLm::new(4, 4, 4, &mut rng);
        let _ = sample_walk_batch(&ThreadPool::new(1), &lstm, 3, 5, 1.0, &[0u64; 7]);
    }
}
