//! Multi-core walk sampling over the incremental decoders.
//!
//! PR 3 made per-token decoding cheap (KV caches / carried LSTM state);
//! this module layers two further levers on the sampling hot path:
//!
//! 1. **Cores** — [`sample_walk_batch`] fans walks out across a
//!    [`fairgen_par::ThreadPool`] with one decode state per worker and one
//!    per-walk replayed RNG stream.
//! 2. **GEMMs** — each worker advances a whole *chunk* of up to
//!    [`MATRIX_BATCH_WIDTH`] walks in lockstep through the
//!    [`MatrixSampler`] batched decoders, so every layer costs one
//!    matrix–matrix product per token across the chunk instead of one
//!    vector–matrix product per walk.
//!
//! Both levers are **bit-identical to the sequential sampling loop** for
//! any worker count and batch width:
//!
//! * Both samplers ([`crate::decode::sample_scaled_softmax`],
//!   [`crate::decode::sample_softmax_probs`]) consume exactly one `u64` per
//!   token, so walk `i` of a sequential loop consumes draws
//!   `[i·len, (i+1)·len)` of the master stream. [`fairgen_par::predraw`]
//!   materializes that stream up front and each walk replays its own slice
//!   through a [`fairgen_par::ReplayRng`].
//! * Decode states are reset per walk (or per chunk), so which worker's
//!   state a walk lands on cannot influence its tokens (asserted by
//!   `tests/parallel_parity.rs` and `tests/batch_parity.rs`).
//! * The batched decoders accumulate every GEMM output element in the same
//!   ascending-`k` order as the single-row path, so stacking walks into a
//!   matrix cannot reorder any float op within one walk.
//!
//! Setting the environment variable `FAIRGEN_BATCH_DECODE=0` routes
//! [`sample_walk_batch`] through the per-walk decoders
//! ([`sample_walk_batch_per_walk`]) — an operational kill switch that keeps
//! output bit-identical while giving up the GEMM batching.

use fairgen_graph::error::Result;
use fairgen_par::{predraw, ReplayRng, ThreadPool};
use rand::{Rng, RngCore};

use crate::decode::{BatchDecodeState, DecodeState};
use crate::lstm::{LstmBatchState, LstmDecodeState, LstmLm};
use crate::transformer::TransformerLm;

/// Walks advanced in lockstep per worker by the matrix-stepped
/// [`sample_walk_batch`]: chunk boundaries fall at fixed multiples of this
/// constant regardless of pool width, so the worker count cannot change
/// which walks share a batch (determinism) — only how chunks are scheduled.
pub const MATRIX_BATCH_WIDTH: usize = 32;

/// A language model whose sampling runs against a caller-owned decode state
/// through `&self` — the hook [`sample_walk_batch`] fans out over.
///
/// Implementations must consume **exactly one `u64` from `rng` per sampled
/// token** (the contract that makes [`fairgen_par::predraw`]-based
/// parallelism bit-identical to sequential sampling) and must reset the
/// state on entry, so a state reused across walks — or migrated between
/// workers — cannot leak history into the output.
pub trait BatchSampler: Sync {
    /// Reusable per-sequence decoding state (one per worker).
    type State: Send;

    /// A fresh decode state sized for this model.
    fn make_state(&self) -> Self::State;

    /// Samples one sequence of `len` tokens against `state`.
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::Generate`] on a degenerate sampling
    /// distribution.
    fn sample_into<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>>;
}

impl BatchSampler for TransformerLm {
    type State = DecodeState;

    fn make_state(&self) -> DecodeState {
        self.decode_state()
    }

    fn sample_into<R: Rng + ?Sized>(
        &self,
        state: &mut DecodeState,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        self.sample_with(state, len, temperature, rng)
    }
}

impl BatchSampler for LstmLm {
    type State = LstmDecodeState;

    fn make_state(&self) -> LstmDecodeState {
        self.decode_state()
    }

    fn sample_into<R: Rng + ?Sized>(
        &self,
        state: &mut LstmDecodeState,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        self.sample_with(state, len, temperature, rng)
    }
}

/// A [`BatchSampler`] that can additionally advance many walks in lockstep
/// through a shared M-row activation matrix — one GEMM per layer per token
/// across the whole batch. Implementations must keep every walk bit-exact
/// with [`BatchSampler::sample_into`] fed the same per-walk RNG stream, at
/// any batch width, including ragged batches where walks finish early.
pub trait MatrixSampler: BatchSampler {
    /// Reusable batched decoding state (one per worker).
    type BatchState: Send;

    /// A fresh batched state holding up to `width` concurrent walks.
    fn make_batch_state(&self, width: usize) -> Self::BatchState;

    /// Samples `lens.len()` sequences in lockstep, walk `i` drawing from
    /// `rngs[i]` (exactly one `u64` per token).
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::Generate`] on a degenerate sampling
    /// distribution.
    fn sample_batch_into<R: Rng>(
        &self,
        state: &mut Self::BatchState,
        lens: &[usize],
        temperature: f64,
        rngs: &mut [R],
    ) -> Result<Vec<Vec<usize>>>;
}

impl MatrixSampler for TransformerLm {
    type BatchState = BatchDecodeState;

    fn make_batch_state(&self, width: usize) -> BatchDecodeState {
        self.batch_decode_state(width)
    }

    fn sample_batch_into<R: Rng>(
        &self,
        state: &mut BatchDecodeState,
        lens: &[usize],
        temperature: f64,
        rngs: &mut [R],
    ) -> Result<Vec<Vec<usize>>> {
        self.sample_batch_with(state, lens, temperature, rngs)
    }
}

impl MatrixSampler for LstmLm {
    type BatchState = LstmBatchState;

    fn make_batch_state(&self, width: usize) -> LstmBatchState {
        self.batch_decode_state(width)
    }

    fn sample_batch_into<R: Rng>(
        &self,
        state: &mut LstmBatchState,
        lens: &[usize],
        temperature: f64,
        rngs: &mut [R],
    ) -> Result<Vec<Vec<usize>>> {
        self.sample_batch_with(state, lens, temperature, rngs)
    }
}

/// Pre-draws the master stream for `count` walks of `len` tokens each —
/// advancing `rng` exactly as the sequential sampling loop would — and
/// returns it for [`sample_walk_batch`].
pub fn predraw_walks<R: RngCore + ?Sized>(rng: &mut R, count: usize, len: usize) -> Vec<u64> {
    predraw(rng, count * len)
}

/// Samples `count` walks of `len` tokens across `pool`, advancing chunks of
/// up to [`MATRIX_BATCH_WIDTH`] walks in lockstep through the model's
/// batched decoder — one GEMM per layer per token across each chunk — with
/// one batched state per worker. Walk `i` replays
/// `draws[i·len .. (i+1)·len]`, so the output is bit-identical to the
/// sequential loop
/// `for i in 0..count { model.sample(len, temperature, &mut master_rng) }`
/// when `draws` came from [`predraw_walks`] on that master RNG — for any
/// pool width, and identical to [`sample_walk_batch_per_walk`].
///
/// Setting `FAIRGEN_BATCH_DECODE=0` in the environment (checked per call)
/// routes through the per-walk decoders instead — same bits, no GEMM
/// batching.
///
/// # Errors
///
/// The lowest-indexed chunk whose sampling degenerates reports its
/// [`fairgen_graph::FairGenError::Generate`] (within a chunk, the first
/// failing position in walk order).
///
/// # Panics
///
/// Panics if `draws.len() != count * len`.
pub fn sample_walk_batch<M: MatrixSampler>(
    pool: &ThreadPool,
    model: &M,
    count: usize,
    len: usize,
    temperature: f64,
    draws: &[u64],
) -> Result<Vec<Vec<usize>>> {
    assert_eq!(draws.len(), count * len, "predraw budget disagrees with the walk batch");
    // Operational kill switch, read fresh on every call so a live process
    // can be steered without restarting.
    if std::env::var_os("FAIRGEN_BATCH_DECODE").is_some_and(|v| v == "0") {
        return sample_walk_batch_per_walk(pool, model, count, len, temperature, draws);
    }
    if count == 0 {
        return Ok(Vec::new());
    }
    let chunks = count.div_ceil(MATRIX_BATCH_WIDTH);
    let chunked = pool.par_map_init(
        chunks,
        || model.make_batch_state(MATRIX_BATCH_WIDTH),
        |state, chunk| {
            let lo = chunk * MATRIX_BATCH_WIDTH;
            let hi = (lo + MATRIX_BATCH_WIDTH).min(count);
            let lens = vec![len; hi - lo];
            let mut rngs: Vec<ReplayRng<'_>> =
                (lo..hi).map(|w| ReplayRng::new(&draws[w * len..(w + 1) * len])).collect();
            model.sample_batch_into(state, &lens, temperature, &mut rngs)
        },
    );
    let mut walks = Vec::with_capacity(count);
    for chunk in chunked {
        walks.extend(chunk?);
    }
    Ok(walks)
}

/// The per-walk fan-out path: samples `count` walks of `len` tokens across
/// `pool` with one single-walk decode state per worker, walk `i` replaying
/// `draws[i·len .. (i+1)·len]`. This is the pre-matrix baseline and the
/// oracle the batched path is tested against; [`sample_walk_batch`] falls
/// back to it when `FAIRGEN_BATCH_DECODE=0`.
///
/// # Errors
///
/// The first (lowest-index) walk whose sampling degenerates reports its
/// [`fairgen_graph::FairGenError::Generate`].
///
/// # Panics
///
/// Panics if `draws.len() != count * len`.
pub fn sample_walk_batch_per_walk<M: BatchSampler>(
    pool: &ThreadPool,
    model: &M,
    count: usize,
    len: usize,
    temperature: f64,
    draws: &[u64],
) -> Result<Vec<Vec<usize>>> {
    assert_eq!(draws.len(), count * len, "predraw budget disagrees with the walk batch");
    let walks = pool.par_map_init(
        count,
        || model.make_state(),
        |state, i| {
            let mut rng = ReplayRng::new(&draws[i * len..(i + 1) * len]);
            model.sample_into(state, len, temperature, &mut rng)
        },
    );
    walks.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::TransformerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_equals_sequential_for_both_families() {
        let mut rng = StdRng::seed_from_u64(2);
        let tf = TransformerLm::new(
            TransformerConfig { vocab: 9, d_model: 8, heads: 2, layers: 1, max_len: 8 },
            &mut rng,
        );
        let lstm = LstmLm::new(9, 6, 8, &mut rng);
        let pool = ThreadPool::new(2);
        let (count, len) = (12, 5);

        let mut seq_rng = StdRng::seed_from_u64(77);
        let mut state = tf.make_state();
        let sequential: Vec<Vec<usize>> = (0..count)
            .map(|_| tf.sample_with(&mut state, len, 1.0, &mut seq_rng).expect("sample"))
            .collect();
        let mut batch_rng = StdRng::seed_from_u64(77);
        let draws = predraw_walks(&mut batch_rng, count, len);
        let batch = sample_walk_batch(&pool, &tf, count, len, 1.0, &draws).expect("batch");
        assert_eq!(batch, sequential);

        let mut seq_rng = StdRng::seed_from_u64(78);
        let mut state = lstm.make_state();
        let sequential: Vec<Vec<usize>> = (0..count)
            .map(|_| lstm.sample_with(&mut state, len, 1.0, &mut seq_rng).expect("sample"))
            .collect();
        let mut batch_rng = StdRng::seed_from_u64(78);
        let draws = predraw_walks(&mut batch_rng, count, len);
        let batch = sample_walk_batch(&pool, &lstm, count, len, 1.0, &draws).expect("batch");
        assert_eq!(batch, sequential);
    }

    #[test]
    #[should_panic(expected = "predraw budget")]
    fn wrong_draw_budget_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = LstmLm::new(4, 4, 4, &mut rng);
        let _ = sample_walk_batch(&ThreadPool::new(1), &lstm, 3, 5, 1.0, &[0u64; 7]);
    }
}
