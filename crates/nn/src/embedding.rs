//! Token (node) embedding tables.

use rand::Rng;

use crate::mat::Mat;
use crate::param::{HasParams, Param};

/// A lookup table mapping token ids to dense rows.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// The table (`vocab × dim`).
    pub table: Param,
    cache_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Uniformly initialized table with scale `1/√dim`.
    pub fn new<R: Rng + ?Sized>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        let scale = 1.0 / (dim as f64).sqrt();
        Embedding { table: Param::new(Mat::uniform(vocab, dim, scale, rng)), cache_ids: None }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Looks up `ids`, producing a `len × dim` matrix; caches ids for
    /// backward.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn forward(&mut self, ids: &[usize]) -> Mat {
        let out = self.lookup(ids);
        self.cache_ids = Some(ids.to_vec());
        out
    }

    /// Lookup without caching (inference).
    pub fn lookup(&self, ids: &[usize]) -> Mat {
        let dim = self.dim();
        let mut out = Mat::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab(), "token id {id} out of range");
            out.row_mut(r).copy_from_slice(self.table.value.row(id));
        }
        out
    }

    /// A single row of the table (a node's embedding vector).
    pub fn vector(&self, id: usize) -> &[f64] {
        self.table.value.row(id)
    }

    /// Copies token `id`'s row into `out` (single-token decode step path).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `out` has the wrong width.
    pub fn lookup_into(&self, id: usize, out: &mut [f64]) {
        assert!(id < self.vocab(), "token id {id} out of range");
        out.copy_from_slice(self.table.value.row(id));
    }

    /// Copies the rows for `ids` into the first `ids.len()` rows of `out`
    /// (batched decode step path). Rows past `ids.len()` are untouched.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range, `out` is too narrow, or has fewer
    /// rows than `ids`.
    pub fn lookup_rows_into(&self, ids: &[usize], out: &mut Mat) {
        assert_eq!(out.cols(), self.dim(), "embedding output width mismatch");
        assert!(ids.len() <= out.rows(), "embedding output has too few rows");
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab(), "token id {id} out of range");
            out.row_mut(r).copy_from_slice(self.table.value.row(id));
        }
    }

    /// Backward: scatters `dy` rows into the table gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Embedding::forward`].
    pub fn backward(&mut self, dy: &Mat) {
        let ids = self.cache_ids.as_ref().expect("backward before forward");
        assert_eq!(dy.rows(), ids.len(), "gradient row count mismatch");
        for (r, &id) in ids.iter().enumerate() {
            let src = dy.row(r).to_vec();
            let dst = self.table.grad.row_mut(id);
            for (d, s) in dst.iter_mut().zip(&src) {
                *d += s;
            }
        }
    }
}

impl HasParams for Embedding {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

impl fairgen_graph::Codec for Embedding {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        fairgen_graph::Codec::encode(&self.table, enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let table = <Param as fairgen_graph::Codec>::decode(dec)?;
        Ok(Embedding { table, cache_ids: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_copies_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = Embedding::new(5, 3, &mut rng);
        let out = e.forward(&[2, 2, 4]);
        assert_eq!(out.row(0), e.vector(2));
        assert_eq!(out.row(1), e.vector(2));
        assert_eq!(out.row(2), e.vector(4));
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = Embedding::new(4, 2, &mut rng);
        let _ = e.forward(&[1, 1]);
        let dy = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        e.backward(&dy);
        assert_eq!(e.table.grad.row(1), &[4.0, 6.0]);
        assert_eq!(e.table.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = Embedding::new(6, 4, &mut rng);
        let ids = [0usize, 3, 3, 5];
        check_param_gradients(
            &mut e,
            |e| {
                let y = e.forward(&ids);
                let loss = 0.5 * y.sq_norm();
                e.backward(&y);
                loss
            },
            1e-5,
            1e-6,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_id_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut e = Embedding::new(3, 2, &mut rng);
        let _ = e.forward(&[3]);
    }
}
