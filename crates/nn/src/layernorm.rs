//! Layer normalization (per-row).

use crate::mat::Mat;
use crate::param::{HasParams, Param};

/// Per-row layer normalization with learned gain `γ` and bias `β`.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Gain (`1 × dim`), initialized to 1.
    pub gamma: Param,
    /// Bias (`1 × dim`), initialized to 0.
    pub beta: Param,
    eps: f64,
    cache: Option<LnCache>,
}

#[derive(Clone, Debug)]
struct LnCache {
    xhat: Mat,
    inv_std: Vec<f64>,
}

impl LayerNorm {
    /// Creates a layer norm over rows of width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Mat::from_fn(1, dim, |_, _| 1.0)),
            beta: Param::new(Mat::zeros(1, dim)),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Forward pass, caching normalization statistics.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let (rows, cols) = (x.rows(), x.cols());
        assert_eq!(cols, self.dim(), "layernorm width mismatch");
        let mut xhat = Mat::zeros(rows, cols);
        let mut inv_std = Vec::with_capacity(rows);
        let mut y = Mat::zeros(rows, cols);
        for r in 0..rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f64>() / cols as f64;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / cols as f64;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            for (c, &xc) in row.iter().enumerate() {
                let xh = (xc - mean) * istd;
                xhat.set(r, c, xh);
                y.set(r, c, self.gamma.value.get(0, c) * xh + self.beta.value.get(0, c));
            }
        }
        self.cache = Some(LnCache { xhat, inv_std });
        y
    }

    /// Single-row inference (decode step path): normalizes `x` into `out`
    /// without touching the training cache. Bit-exact with the
    /// corresponding row of [`LayerNorm::forward`].
    pub fn forward_row(&self, x: &[f64], out: &mut [f64]) {
        let cols = self.dim();
        assert_eq!(x.len(), cols, "layernorm width mismatch");
        assert_eq!(out.len(), cols, "layernorm output width mismatch");
        let mean = x.iter().sum::<f64>() / cols as f64;
        let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / cols as f64;
        let istd = 1.0 / (var + self.eps).sqrt();
        for (c, (&xc, o)) in x.iter().zip(out.iter_mut()).enumerate() {
            let xh = (xc - mean) * istd;
            *o = self.gamma.value.get(0, c) * xh + self.beta.value.get(0, c);
        }
    }

    /// Batched inference over the first `m` rows of `x` into `out` — one
    /// [`LayerNorm::forward_row`] per row, bit-exact with it (rows are
    /// normalized independently, so batching cannot reorder any float op).
    /// Rows `m..` of `out` are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds either row count or on a width mismatch.
    pub fn forward_rows(&self, m: usize, x: &Mat, out: &mut Mat) {
        assert!(m <= x.rows() && m <= out.rows(), "layernorm batch exceeds row count");
        for r in 0..m {
            self.forward_row(x.row(r), out.row_mut(r));
        }
    }

    /// Backward pass: accumulates `dγ`, `dβ` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`LayerNorm::forward`].
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let cache = self.cache.as_ref().expect("backward before forward");
        let (rows, cols) = (dy.rows(), dy.cols());
        let n = cols as f64;
        let mut dx = Mat::zeros(rows, cols);
        for r in 0..rows {
            let istd = cache.inv_std[r];
            // dγ_c += dy_c · x̂_c ; dβ_c += dy_c
            let mut sum_dxhat = 0.0;
            let mut sum_dxhat_xhat = 0.0;
            let mut dxhat = vec![0.0; cols];
            for (c, slot) in dxhat.iter_mut().enumerate() {
                let g = dy.get(r, c);
                let xh = cache.xhat.get(r, c);
                let cur_g = self.gamma.grad.get(0, c);
                self.gamma.grad.set(0, c, cur_g + g * xh);
                let cur_b = self.beta.grad.get(0, c);
                self.beta.grad.set(0, c, cur_b + g);
                let dxh = g * self.gamma.value.get(0, c);
                *slot = dxh;
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xh;
            }
            for (c, &dxh) in dxhat.iter().enumerate() {
                let xh = cache.xhat.get(r, c);
                let v = (dxh - sum_dxhat / n - xh * sum_dxhat_xhat / n) * istd;
                dx.set(r, c, v);
            }
        }
        dx
    }
}

impl HasParams for LayerNorm {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

impl fairgen_graph::Codec for LayerNorm {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        fairgen_graph::Codec::encode(&self.gamma, enc);
        fairgen_graph::Codec::encode(&self.beta, enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let gamma = <Param as fairgen_graph::Codec>::decode(dec)?;
        let beta = <Param as fairgen_graph::Codec>::decode(dec)?;
        crate::mat::check_shape(&beta.value, 1, gamma.value.cols(), "layernorm beta")?;
        crate::mat::check_shape(&gamma.value, 1, gamma.value.cols(), "layernorm gamma")?;
        Ok(LayerNorm { gamma, beta, eps: 1e-5, cache: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;

    #[test]
    fn rows_are_normalized() {
        let mut ln = LayerNorm::new(4);
        let x = Mat::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0]);
        let y = ln.forward(&x);
        for r in 0..2 {
            let mean: f64 = y.row(r).iter().sum::<f64>() / 4.0;
            let var: f64 = y.row(r).iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-9, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut ln = LayerNorm::new(3);
        ln.gamma.value = Mat::from_vec(1, 3, vec![2.0, 2.0, 2.0]);
        ln.beta.value = Mat::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let x = Mat::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let y = ln.forward(&x);
        let mean: f64 = y.row(0).iter().sum::<f64>() / 3.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let x = Mat::from_fn(3, 5, |r, c| ((r * 5 + c) as f64 * 0.37).sin());
        let mut ln = LayerNorm::new(5);
        check_param_gradients(
            &mut ln,
            |l| {
                let y = l.forward(&x);
                let loss = 0.5 * y.sq_norm();
                l.backward(&y);
                loss
            },
            1e-5,
            1e-5,
        );
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut ln = LayerNorm::new(4);
        let x0 = Mat::from_fn(2, 4, |r, c| (r as f64 + 1.0) * (c as f64 - 1.5) * 0.3);
        let y = ln.forward(&x0);
        let dx = ln.backward(&y.clone());
        let eps = 1e-6;
        let loss_of = |ln: &mut LayerNorm, x: &Mat| {
            let y = ln.forward(x);
            0.5 * y.sq_norm()
        };
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut xp = x0.clone();
                xp.set(r, c, x0.get(r, c) + eps);
                let mut xm = x0.clone();
                xm.set(r, c, x0.get(r, c) - eps);
                let num = (loss_of(&mut ln, &xp) - loss_of(&mut ln, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-5,
                    "dx({r},{c}): numeric {num} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut ln = LayerNorm::new(3);
        let _ = ln.forward(&Mat::zeros(1, 4));
    }
}
