//! Trainable parameters.

use crate::mat::Mat;

/// A trainable tensor: value, accumulated gradient, and Adam moment buffers.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Mat,
    /// Adam first-moment estimate.
    pub m: Mat,
    /// Adam second-moment estimate.
    pub v: Mat,
}

impl Param {
    /// Wraps a value with zeroed gradient and moments.
    pub fn new(value: Mat) -> Self {
        let grad = Mat::zeros(value.rows(), value.cols());
        let m = grad.clone();
        let v = grad.clone();
        Param { value, grad, m, v }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }
}

/// Checkpoints are *optimizer-free*: only the value matrix is stored, and
/// decoding re-zeroes the gradient and Adam moments. A reloaded model
/// generates identically; resumed *training* restarts its optimizer state.
impl fairgen_graph::Codec for Param {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        self.value.encode(enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        Ok(Param::new(<Mat as fairgen_graph::Codec>::decode(dec)?))
    }
}

/// Anything that owns [`Param`]s and can hand them to an optimizer.
pub trait HasParams {
    /// Visits every parameter exactly once.
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all gradients.
    fn zero_grad(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.count());
        n
    }
}

/// Flattens every parameter gradient of `model` (in [`HasParams`] visit
/// order) into one contiguous vector — the transport format data-parallel
/// training uses to merge per-item gradients deterministically.
pub fn collect_grads(model: &mut dyn HasParams) -> Vec<f64> {
    let mut out = Vec::new();
    model.for_each_param(&mut |p| out.extend_from_slice(p.grad.as_slice()));
    out
}

/// Adds a flat gradient vector (from [`collect_grads`] on an
/// identically-shaped model) into `model`'s gradients. Applying per-item
/// vectors in item order reproduces the sequential accumulation
/// `grad += g_0; grad += g_1; …` bit-for-bit, regardless of which worker
/// produced each vector.
///
/// # Panics
///
/// Panics if `flat`'s length disagrees with the model's parameter count.
pub fn add_grads(model: &mut dyn HasParams, flat: &[f64]) {
    let mut offset = 0usize;
    model.for_each_param(&mut |p| {
        let grad = p.grad.as_mut_slice();
        let src = flat
            .get(offset..offset + grad.len())
            .expect("flat gradient length disagrees with the model");
        for (g, &s) in grad.iter_mut().zip(src) {
            *g += s;
        }
        offset += grad.len();
    });
    assert_eq!(offset, flat.len(), "flat gradient length disagrees with the model");
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: Param,
        b: Param,
    }

    impl HasParams for Two {
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut t = Two { a: Param::new(Mat::zeros(2, 2)), b: Param::new(Mat::zeros(1, 3)) };
        t.a.grad.set(0, 0, 5.0);
        t.b.grad.set(0, 2, -1.0);
        t.zero_grad();
        assert_eq!(t.a.grad.sum(), 0.0);
        assert_eq!(t.b.grad.sum(), 0.0);
    }

    #[test]
    fn param_count_sums() {
        let mut t = Two { a: Param::new(Mat::zeros(2, 2)), b: Param::new(Mat::zeros(1, 3)) };
        assert_eq!(t.param_count(), 7);
    }

    #[test]
    fn grads_round_trip_through_the_flat_format() {
        let mut t = Two { a: Param::new(Mat::zeros(2, 2)), b: Param::new(Mat::zeros(1, 3)) };
        t.a.grad.set(0, 1, 2.5);
        t.b.grad.set(0, 2, -1.0);
        let flat = collect_grads(&mut t);
        assert_eq!(flat.len(), 7);
        t.zero_grad();
        add_grads(&mut t, &flat);
        add_grads(&mut t, &flat);
        assert_eq!(t.a.grad.get(0, 1), 5.0);
        assert_eq!(t.b.grad.get(0, 2), -2.0);
    }

    #[test]
    #[should_panic(expected = "disagrees with the model")]
    fn flat_length_mismatch_panics() {
        let mut t = Two { a: Param::new(Mat::zeros(2, 2)), b: Param::new(Mat::zeros(1, 3)) };
        add_grads(&mut t, &[0.0; 6]);
    }
}
