//! Trainable parameters.

use crate::mat::Mat;

/// A trainable tensor: value, accumulated gradient, and Adam moment buffers.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Mat,
    /// Adam first-moment estimate.
    pub m: Mat,
    /// Adam second-moment estimate.
    pub v: Mat,
}

impl Param {
    /// Wraps a value with zeroed gradient and moments.
    pub fn new(value: Mat) -> Self {
        let grad = Mat::zeros(value.rows(), value.cols());
        let m = grad.clone();
        let v = grad.clone();
        Param { value, grad, m, v }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }
}

/// Checkpoints are *optimizer-free*: only the value matrix is stored, and
/// decoding re-zeroes the gradient and Adam moments. A reloaded model
/// generates identically; resumed *training* restarts its optimizer state.
impl fairgen_graph::Codec for Param {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        self.value.encode(enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        Ok(Param::new(<Mat as fairgen_graph::Codec>::decode(dec)?))
    }
}

/// Anything that owns [`Param`]s and can hand them to an optimizer.
pub trait HasParams {
    /// Visits every parameter exactly once.
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all gradients.
    fn zero_grad(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.count());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: Param,
        b: Param,
    }

    impl HasParams for Two {
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut t = Two { a: Param::new(Mat::zeros(2, 2)), b: Param::new(Mat::zeros(1, 3)) };
        t.a.grad.set(0, 0, 5.0);
        t.b.grad.set(0, 2, -1.0);
        t.zero_grad();
        assert_eq!(t.a.grad.sum(), 0.0);
        assert_eq!(t.b.grad.sum(), 0.0);
    }

    #[test]
    fn param_count_sums() {
        let mut t = Two { a: Param::new(Mat::zeros(2, 2)), b: Param::new(Mat::zeros(1, 3)) };
        assert_eq!(t.param_count(), 7);
    }
}
