//! Element-wise activation layers.

use crate::mat::Mat;

/// Supported element-wise activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no-op; useful for the output layer of an MLP).
    Identity,
}

const GELU_C: f64 = 0.797_884_560_802_865_4; // sqrt(2/π)

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Gelu => 0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh()),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the pre-activation input.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Gelu => {
                let inner = GELU_C * (x + 0.044715 * x * x * x);
                let t = inner.tanh();
                let dinner = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation element-wise.
    pub fn forward(self, x: &Mat) -> Mat {
        x.map(|v| self.apply(v))
    }

    /// Backward: `dx = dy ⊙ f'(x)`, given the *pre-activation* input `x`.
    pub fn backward(self, x: &Mat, dy: &Mat) -> Mat {
        assert_eq!((x.rows(), x.cols()), (dy.rows(), dy.cols()), "shape mismatch");
        Mat::from_fn(x.rows(), x.cols(), |r, c| dy.get(r, c) * self.derivative(x.get(r, c)))
    }
}

impl fairgen_graph::Codec for Activation {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_u8(match self {
            Activation::Relu => 0,
            Activation::Gelu => 1,
            Activation::Tanh => 2,
            Activation::Sigmoid => 3,
            Activation::Identity => 4,
        });
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        Ok(match dec.take_u8()? {
            0 => Activation::Relu,
            1 => Activation::Gelu,
            2 => Activation::Tanh,
            3 => Activation::Sigmoid,
            4 => Activation::Identity,
            other => {
                return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                    detail: format!("unknown activation discriminant {other}"),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 5] = [
        Activation::Relu,
        Activation::Gelu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Identity,
    ];

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in ACTS {
            for &x in &[-2.0, -0.5, -1e-3, 0.1, 0.9, 3.0] {
                let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let ana = act.derivative(x);
                assert!(
                    (num - ana).abs() < 1e-5,
                    "{act:?} at {x}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(10.0) > 0.999);
        assert!(s.apply(-10.0) < 0.001);
        assert!((s.apply(1.3) + s.apply(-1.3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gelu_close_to_identity_for_large_x() {
        assert!((Activation::Gelu.apply(6.0) - 6.0).abs() < 1e-6);
        assert!(Activation::Gelu.apply(-6.0).abs() < 1e-6);
    }

    #[test]
    fn matrix_forward_backward_shapes() {
        let x = Mat::from_fn(2, 3, |r, c| r as f64 - c as f64);
        for act in ACTS {
            let y = act.forward(&x);
            assert_eq!((y.rows(), y.cols()), (2, 3));
            let dy = Mat::from_fn(2, 3, |_, _| 1.0);
            let dx = act.backward(&x, &dy);
            assert_eq!((dx.rows(), dx.cols()), (2, 3));
        }
    }
}
