//! A minimal, dependency-free deep-learning substrate with hand-written
//! backpropagation, built for the FairGen reproduction.
//!
//! The paper trains three kinds of networks: a Transformer walk generator
//! `g_θ` (Section II-B, M1), a three-layer MLP discriminator `d_ω`
//! (Section II-B, M2), and — for the baselines — an LSTM walk generator
//! (NetGAN) and a GCN encoder (GAE). Rust has no mature GPU training stack,
//! so this crate implements exactly the layers those models need, on the
//! CPU, in `f64`, with analytically derived backward passes that are
//! verified against centered finite differences in the test suite.
//!
//! Modules:
//!
//! * [`mat`] — dense row-major matrices and the handful of GEMM variants
//!   the backward passes need.
//! * [`param`] — trainable parameters (value + gradient + Adam moments).
//! * [`linear`], [`embedding`], [`layernorm`], [`activation`] — layers.
//! * [`softmax`] — softmax / log-softmax / cross-entropy with gradients.
//! * [`attention`] — causal multi-head self-attention.
//! * [`decode`] — KV-cached incremental decoding state (single-walk and
//!   batched) and the shared token samplers (the hot path of every
//!   generator).
//! * [`sample`] — multi-core batch walk sampling: chunks of walks advance
//!   in lockstep through batched decoders (one GEMM per layer per token
//!   across the chunk), fanned out over a `fairgen_par` pool, bit-identical
//!   to sequential sampling via pre-drawn, per-walk replayed RNG streams.
//! * [`transformer`] — a small autoregressive Transformer language model
//!   over node vocabularies.
//! * [`lstm`] — an LSTM language model (NetGAN-lite's generator).
//! * [`mlp`] — multi-layer perceptrons (the discriminator `d_ω`).
//! * [`optim`] — SGD and Adam with gradient clipping.
//! * [`gradcheck`] — finite-difference verification utilities.

pub mod activation;
pub mod attention;
pub mod decode;
pub mod embedding;
pub mod gradcheck;
pub mod layernorm;
pub mod linear;
pub mod lstm;
pub mod mat;
pub mod mlp;
pub mod optim;
pub mod param;
pub mod sample;
pub mod softmax;
pub mod transformer;

pub use activation::Activation;
pub use attention::AttnBatchScratch;
pub use decode::{sample_scaled_softmax, sample_softmax_probs, BatchDecodeState, DecodeState};
pub use embedding::Embedding;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use lstm::{LstmBatchState, LstmDecodeState, LstmLm};
pub use mat::{vecmat_into, Mat};
pub use mlp::{Mlp, MlpScratch};
pub use optim::{clip_gradients, Adam, Sgd};
pub use param::{add_grads, collect_grads, Param};
pub use sample::{
    predraw_walks, sample_walk_batch, sample_walk_batch_per_walk, BatchSampler, MatrixSampler,
    MATRIX_BATCH_WIDTH,
};
pub use softmax::{cross_entropy, log_softmax, softmax_rows, softmax_slice, unlikelihood};
pub use transformer::{TransformerConfig, TransformerLm};
