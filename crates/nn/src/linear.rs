//! Fully connected layers.

use rand::Rng;

use crate::mat::Mat;
use crate::param::{HasParams, Param};

/// `y = x W + b` over a batch of rows (`x: B×in`, `W: in×out`, `b: 1×out`).
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix (`in × out`).
    pub w: Param,
    /// Bias row (`1 × out`).
    pub b: Param,
    cache_x: Option<Mat>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new<R: Rng + ?Sized>(input: usize, output: usize, rng: &mut R) -> Self {
        Linear {
            w: Param::new(Mat::xavier(input, output, rng)),
            b: Param::new(Mat::zeros(1, output)),
            cache_x: None,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass, caching the input for backward.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w.value);
        for r in 0..y.rows() {
            let bias = self.b.value.row(0).to_vec();
            for (yv, bv) in y.row_mut(r).iter_mut().zip(&bias) {
                *yv += bv;
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w.value);
        for r in 0..y.rows() {
            for (c, yv) in y.row_mut(r).iter_mut().enumerate() {
                *yv += self.b.value.get(0, c);
            }
        }
        y
    }

    /// Single-row inference (decode step path): `out = x W + b` without
    /// touching the training cache or allocating. Bit-exact with the
    /// corresponding row of [`Linear::forward`].
    pub fn forward_row(&self, x: &[f64], out: &mut [f64]) {
        crate::mat::vecmat_into(x, &self.w.value, out);
        for (o, &bv) in out.iter_mut().zip(self.b.value.row(0)) {
            *o += bv;
        }
    }

    /// Batched inference over the first `m` rows of `x` into `out`: one
    /// GEMM against `W` plus the bias broadcast, bit-exact per row with
    /// [`Linear::forward_row`] (the prefix GEMM accumulates ascending-`k`
    /// like `vecmat_into`). Rows `m..` of `out` are untouched.
    pub fn forward_rows(&self, m: usize, x: &Mat, out: &mut Mat) {
        x.matmul_prefix_into(m, &self.w.value, out);
        for r in 0..m {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(self.b.value.row(0)) {
                *o += bv;
            }
        }
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Linear::forward`].
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let x = self.cache_x.as_ref().expect("backward before forward");
        // dW = xᵀ dy; db = column sums of dy; dx = dy Wᵀ.
        self.w.grad.add_assign(&x.matmul_tn(dy));
        for r in 0..dy.rows() {
            let row = dy.row(r).to_vec();
            for (c, &g) in row.iter().enumerate() {
                let cur = self.b.grad.get(0, c);
                self.b.grad.set(0, c, cur + g);
            }
        }
        dy.matmul_nt(&self.w.value)
    }
}

impl HasParams for Linear {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

impl fairgen_graph::Codec for Linear {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        fairgen_graph::Codec::encode(&self.w, enc);
        fairgen_graph::Codec::encode(&self.b, enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let w = <Param as fairgen_graph::Codec>::decode(dec)?;
        let b = <Param as fairgen_graph::Codec>::decode(dec)?;
        crate::mat::check_shape(&b.value, 1, w.value.cols(), "linear bias")?;
        Ok(Linear { w, b, cache_x: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 5, &mut rng);
        let x = Mat::from_fn(4, 3, |r, c| (r + c) as f64);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
        assert_eq!(l.input_dim(), 3);
        assert_eq!(l.output_dim(), 5);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(4, 2, &mut rng);
        let x = Mat::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.1);
        assert_eq!(l.forward(&x), l.forward_inference(&x));
    }

    #[test]
    fn identity_weight_passthrough() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w.value = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let x = Mat::from_vec(1, 2, vec![3.0, -4.0]);
        assert_eq!(l.forward(&x), x);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Mat::from_fn(3, 4, |r, c| ((r * 7 + c * 3) % 5) as f64 * 0.3 - 0.6);
        // Loss: sum of squares of outputs.
        let mut layer = Linear::new(4, 3, &mut rng);
        check_param_gradients(
            &mut layer,
            |l| {
                let y = l.forward(&x);
                let loss = 0.5 * y.sq_norm();
                let dy = y.clone();
                l.backward(&dy);
                loss
            },
            1e-5,
            1e-6,
        );
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Linear::new(3, 2, &mut rng);
        let x0 = Mat::from_fn(2, 3, |r, c| (r as f64 - c as f64) * 0.4);
        let y = l.forward(&x0);
        let dy = y.clone(); // d(½‖y‖²)/dy = y
        let dx = l.backward(&dy);
        let eps = 1e-6;
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut xp = x0.clone();
                xp.set(r, c, x0.get(r, c) + eps);
                let mut xm = x0.clone();
                xm.set(r, c, x0.get(r, c) - eps);
                let lp = 0.5 * l.forward_inference(&xp).sq_norm();
                let lm = 0.5 * l.forward_inference(&xm).sq_norm();
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-6,
                    "dx({r},{c}): numeric {num} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut l = Linear::new(2, 2, &mut rng);
        let dy = Mat::zeros(1, 2);
        let _ = l.backward(&dy);
    }
}
