//! A small autoregressive Transformer language model over node vocabularies
//! — the FairGen generator `g_θ` (Section II-B, M1).

use rand::Rng;

use crate::attention::{KvCache, MultiHeadAttention};
use crate::decode::{
    sample_scaled_softmax, BatchDecodeState, BatchRows, DecodeState, RowScratch,
};
use crate::embedding::Embedding;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::mat::Mat;
use crate::param::{HasParams, Param};
use crate::softmax::{cross_entropy, log_softmax};
use fairgen_graph::error::Result;

/// One pre-norm transformer block: `x + Attn(LN(x))` then `h + FFN(LN(h))`.
#[derive(Clone, Debug)]
struct Block {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
    cache_ff_pre: Option<Mat>, // pre-activation of fc1
}

const FFN_MULT: usize = 4;

impl Block {
    fn new<R: Rng + ?Sized>(d: usize, heads: usize, rng: &mut R) -> Self {
        Block {
            ln1: LayerNorm::new(d),
            attn: MultiHeadAttention::new(d, heads, rng),
            ln2: LayerNorm::new(d),
            fc1: Linear::new(d, FFN_MULT * d, rng),
            fc2: Linear::new(FFN_MULT * d, d, rng),
            cache_ff_pre: None,
        }
    }

    fn forward(&mut self, x: &Mat) -> Mat {
        let mut h = x.clone();
        h.add_assign(&self.attn.forward(self.ln1.forward(x)));
        let pre = self.fc1.forward(&self.ln2.forward(&h));
        let act = crate::activation::Activation::Gelu.forward(&pre);
        let ff = self.fc2.forward(&act);
        self.cache_ff_pre = Some(pre);
        let mut out = h;
        out.add_assign(&ff);
        out
    }

    /// One incremental decode step: transforms the residual row `rows.x` in
    /// place, appending this position's K/V rows to `cache`. Bit-exact with
    /// row `pos` of [`Block::forward`] over the same prefix.
    fn step(&self, pos: usize, cache: &mut KvCache, rows: &mut RowScratch) {
        // h = x + Attn(LN1(x))
        self.ln1.forward_row(&rows.x, &mut rows.norm);
        self.attn.step(&rows.norm, pos, cache, &mut rows.attn_out);
        for (xo, &a) in rows.x.iter_mut().zip(&rows.attn_out) {
            *xo += a;
        }
        // out = h + FFN(LN2(h))
        self.ln2.forward_row(&rows.x, &mut rows.norm);
        self.fc1.forward_row(&rows.norm, &mut rows.ff_pre);
        for (o, &p) in rows.ff_act.iter_mut().zip(&rows.ff_pre) {
            *o = crate::activation::Activation::Gelu.apply(p);
        }
        self.fc2.forward_row(&rows.ff_act, &mut rows.ff_out);
        for (xo, &f) in rows.x.iter_mut().zip(&rows.ff_out) {
            *xo += f;
        }
    }

    /// Batched analogue of [`Block::step`] over the first `m` rows of
    /// `rows.x` (one row per active walk, all at position `pos`): the same
    /// LN → attention → residual → LN → FFN → residual dataflow, but every
    /// linear map is a single prefix GEMM across all walks. Row `i` is
    /// bit-exact with a [`Block::step`] call against `caches[i]`.
    fn step_batch(&self, m: usize, pos: usize, caches: &mut [KvCache], rows: &mut BatchRows) {
        // h = x + Attn(LN1(x))
        self.ln1.forward_rows(m, &rows.x, &mut rows.norm);
        self.attn.step_batch(m, pos, &rows.norm, caches, &mut rows.attn, &mut rows.attn_out);
        for r in 0..m {
            for (xo, &a) in rows.x.row_mut(r).iter_mut().zip(rows.attn_out.row(r)) {
                *xo += a;
            }
        }
        // out = h + FFN(LN2(h))
        self.ln2.forward_rows(m, &rows.x, &mut rows.norm);
        self.fc1.forward_rows(m, &rows.norm, &mut rows.ff_pre);
        for r in 0..m {
            for (o, &p) in rows.ff_act.row_mut(r).iter_mut().zip(rows.ff_pre.row(r)) {
                *o = crate::activation::Activation::Gelu.apply(p);
            }
        }
        self.fc2.forward_rows(m, &rows.ff_act, &mut rows.ff_out);
        for r in 0..m {
            for (xo, &f) in rows.x.row_mut(r).iter_mut().zip(rows.ff_out.row(r)) {
                *xo += f;
            }
        }
    }

    fn backward(&mut self, dy: &Mat) -> Mat {
        // out = h + fc2(gelu(fc1(ln2(h))))
        let pre = self.cache_ff_pre.take().expect("backward before forward");
        let dact = self.fc2.backward(dy);
        let dpre = crate::activation::Activation::Gelu.backward(&pre, &dact);
        let dln2 = self.fc1.backward(&dpre);
        let mut dh = self.ln2.backward(&dln2);
        dh.add_assign(dy);
        // h = x + attn(ln1(x))
        let dattn_in = self.attn.backward(&dh);
        let mut dx = self.ln1.backward(&dattn_in);
        dx.add_assign(&dh);
        dx
    }
}

impl HasParams for Block {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.for_each_param(f);
        self.attn.for_each_param(f);
        self.ln2.for_each_param(f);
        self.fc1.for_each_param(f);
        self.fc2.for_each_param(f);
    }
}

impl fairgen_graph::Codec for Block {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        fairgen_graph::Codec::encode(&self.ln1, enc);
        fairgen_graph::Codec::encode(&self.attn, enc);
        fairgen_graph::Codec::encode(&self.ln2, enc);
        fairgen_graph::Codec::encode(&self.fc1, enc);
        fairgen_graph::Codec::encode(&self.fc2, enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let ln1 = <LayerNorm as fairgen_graph::Codec>::decode(dec)?;
        let attn = <MultiHeadAttention as fairgen_graph::Codec>::decode(dec)?;
        let ln2 = <LayerNorm as fairgen_graph::Codec>::decode(dec)?;
        let fc1 = <Linear as fairgen_graph::Codec>::decode(dec)?;
        let fc2 = <Linear as fairgen_graph::Codec>::decode(dec)?;
        let d = attn.d_model();
        if ln1.dim() != d
            || ln2.dim() != d
            || fc1.input_dim() != d
            || fc1.output_dim() != FFN_MULT * d
            || fc2.input_dim() != FFN_MULT * d
            || fc2.output_dim() != d
        {
            return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                detail: format!("transformer block widths disagree with d_model {d}"),
            });
        }
        Ok(Block { ln1, attn, ln2, fc1, fc2, cache_ff_pre: None })
    }
}

/// Transformer LM hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TransformerConfig {
    /// Vocabulary size *excluding* the implicit begin-of-sequence token.
    pub vocab: usize,
    /// Model width (paper default 100; scaled presets use 32–64).
    pub d_model: usize,
    /// Attention heads (paper default 4).
    pub heads: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Maximum sequence length (walk length `T`, plus one for BOS).
    pub max_len: usize,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        TransformerConfig { vocab: 0, d_model: 32, heads: 4, layers: 1, max_len: 16 }
    }
}

/// Autoregressive transformer over token sequences, with an implicit BOS
/// token so the first real token is also predicted.
///
/// Token ids `0..vocab` are real tokens (graph nodes); id `vocab` is BOS.
#[derive(Clone, Debug)]
pub struct TransformerLm {
    cfg: TransformerConfig,
    tok: Embedding,
    pos: Embedding,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
    head: Linear,
    cache_len: usize,
    /// Lazily-created decode state reused across [`TransformerLm::sample`]
    /// calls, so batched generation allocates once per model rather than
    /// once per walk. Never checkpointed.
    decode_scratch: Option<DecodeState>,
}

impl TransformerLm {
    /// Builds a model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero vocab, width not divisible
    /// by heads, etc.).
    pub fn new<R: Rng + ?Sized>(cfg: TransformerConfig, rng: &mut R) -> Self {
        assert!(cfg.vocab > 0, "vocab must be positive");
        assert!(cfg.layers > 0, "need at least one block");
        assert!(cfg.max_len > 1, "max_len must exceed 1");
        let blocks = (0..cfg.layers).map(|_| Block::new(cfg.d_model, cfg.heads, rng)).collect();
        TransformerLm {
            tok: Embedding::new(cfg.vocab + 1, cfg.d_model, rng),
            pos: Embedding::new(cfg.max_len, cfg.d_model, rng),
            blocks,
            ln_f: LayerNorm::new(cfg.d_model),
            head: Linear::new(cfg.d_model, cfg.vocab, rng),
            cfg,
            cache_len: 0,
            decode_scratch: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// The BOS token id.
    pub fn bos(&self) -> usize {
        self.cfg.vocab
    }

    /// The shared token-embedding table (vocab+1 × d); row `v` is node `v`'s
    /// representation, co-trained with the generator and reused by the
    /// discriminator `d_ω`.
    pub fn token_embedding(&self) -> &Embedding {
        &self.tok
    }

    /// Mutable access to the shared token embedding (for joint training).
    pub fn token_embedding_mut(&mut self) -> &mut Embedding {
        &mut self.tok
    }

    /// Forward over `[BOS, seq…]`, producing next-token logits for every
    /// prefix: row `i` predicts `seq[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or longer than `max_len − 1`.
    pub fn forward(&mut self, seq: &[usize]) -> Mat {
        assert!(!seq.is_empty(), "empty sequence");
        assert!(seq.len() < self.cfg.max_len, "sequence exceeds max_len");
        let mut ids = Vec::with_capacity(seq.len() + 1);
        ids.push(self.bos());
        ids.extend_from_slice(seq);
        ids.pop(); // inputs are BOS + seq[..T-1]; row i predicts seq[i]
        let positions: Vec<usize> = (0..ids.len()).collect();
        let mut x = self.tok.forward(&ids);
        x.add_assign(&self.pos.forward(&positions));
        for b in &mut self.blocks {
            x = b.forward(&x);
        }
        let x = self.ln_f.forward(&x);
        self.cache_len = ids.len();
        self.head.forward(&x)
    }

    /// Backward from `dlogits`; accumulates every parameter gradient.
    pub fn backward(&mut self, dlogits: &Mat) {
        assert_eq!(dlogits.rows(), self.cache_len, "gradient length mismatch");
        let dx = self.head.backward(dlogits);
        let mut dx = self.ln_f.backward(&dx);
        for b in self.blocks.iter_mut().rev() {
            dx = b.backward(&dx);
        }
        self.pos.backward(&dx);
        self.tok.backward(&dx);
    }

    /// One training step on `seq`; runs forward and backward, returning the
    /// loss. Positive `weight` scales a likelihood (cross-entropy) step;
    /// negative `weight` applies the bounded *unlikelihood* loss
    /// `−log(1 − p)` with magnitude `|weight|` — this is how Algorithm 1
    /// trains `g_θ` to "distinguish the characteristics of the real random
    /// walks from the fake ones" using `N⁻`.
    pub fn train_step(&mut self, seq: &[usize], weight: f64) -> f64 {
        let logits = self.forward(seq);
        let (loss, mut dlogits) = if weight >= 0.0 {
            cross_entropy(&logits, seq, None)
        } else {
            crate::softmax::unlikelihood(&logits, seq)
        };
        let scale = weight.abs();
        if scale != 1.0 {
            dlogits.scale(scale);
        }
        self.backward(&dlogits);
        loss
    }

    /// Mean negative log-likelihood of `seq` (no gradient accumulation).
    pub fn nll(&mut self, seq: &[usize]) -> f64 {
        let logits = self.forward(seq);
        let ls = log_softmax(&logits);
        let mut total = 0.0;
        for (i, &t) in seq.iter().enumerate() {
            total -= ls.get(i, t);
        }
        total / seq.len() as f64
    }

    /// Per-position log-probabilities of `seq` under the model.
    pub fn log_probs(&mut self, seq: &[usize]) -> Vec<f64> {
        let logits = self.forward(seq);
        let ls = log_softmax(&logits);
        seq.iter().enumerate().map(|(i, &t)| ls.get(i, t)).collect()
    }

    /// Creates a decode state sized for this model, for use with
    /// [`TransformerLm::step`] / [`TransformerLm::sample_with`]. One state
    /// serves any number of sequences (the samplers reset it), so serving
    /// paths can amortize the allocation across a whole batch.
    pub fn decode_state(&self) -> DecodeState {
        DecodeState::new(
            self.cfg.layers,
            self.cfg.d_model,
            FFN_MULT * self.cfg.d_model,
            self.cfg.max_len,
            self.cfg.vocab,
        )
    }

    /// Creates a batched decode state holding up to `width` concurrent
    /// walks, for [`TransformerLm::step_batch`] /
    /// [`TransformerLm::sample_batch_with`]. One state serves any number of
    /// batches (the samplers reset it).
    pub fn batch_decode_state(&self, width: usize) -> BatchDecodeState {
        BatchDecodeState::new(
            self.cfg.layers,
            self.cfg.d_model,
            FFN_MULT * self.cfg.d_model,
            self.cfg.max_len,
            self.cfg.vocab,
            width,
        )
    }

    /// One batched incremental decode step: consumes `tokens[i]` for active
    /// walk `i` (all walks share the state's current position) and returns
    /// the next-token logits matrix, whose first `tokens.len()` rows are
    /// live. Each layer costs **one GEMM across all walks** instead of one
    /// vector–matrix product per walk; row `i` is bit-exact with
    /// [`TransformerLm::step`] fed walk `i`'s tokens alone, because the
    /// prefix GEMM accumulates each output element in the same ascending-`k`
    /// order as `vecmat_into`.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different shape, `tokens` does not
    /// match the state's active-walk count (see [`BatchDecodeState::reset`]
    /// / [`BatchDecodeState::retire`]), the position reached `max_len`, or
    /// any token exceeds the vocabulary (BOS included).
    pub fn step_batch<'s>(&self, state: &'s mut BatchDecodeState, tokens: &[usize]) -> &'s Mat {
        assert_eq!(state.d_model, self.cfg.d_model, "decode state width mismatch");
        assert_eq!(state.layers.len(), self.cfg.layers, "decode state depth mismatch");
        assert_eq!(state.max_len, self.cfg.max_len, "decode state length mismatch");
        assert_eq!(tokens.len(), state.active(), "one token per active walk");
        assert!(state.pos < self.cfg.max_len, "decode position past max_len");
        let m = tokens.len();
        let pos = state.pos;
        // Row i = tok[tokens[i]] + pos[position], exactly as the per-walk
        // step sums the two embedding lookups.
        self.tok.lookup_rows_into(tokens, &mut state.rows.x);
        let pos_row = self.pos.vector(pos);
        for r in 0..m {
            for (o, &pv) in state.rows.x.row_mut(r).iter_mut().zip(pos_row) {
                *o += pv;
            }
        }
        for (b, caches) in self.blocks.iter().zip(state.layers.iter_mut()) {
            b.step_batch(m, pos, caches, &mut state.rows);
        }
        self.ln_f.forward_rows(m, &state.rows.x, &mut state.rows.norm);
        self.head.forward_rows(m, &state.rows.norm, &mut state.logits);
        state.pos = pos + 1;
        &state.logits
    }

    /// Samples `lens.len()` sequences in lockstep against a caller-owned
    /// [`BatchDecodeState`] (reset on entry), drawing walk `i`'s tokens from
    /// `rngs[i]` — one RNG stream per walk, one uniform draw per token, so
    /// every walk is bit-identical to [`TransformerLm::sample_with`] fed the
    /// same stream, at any batch width. Walks whose requested length is
    /// reached retire from the batch without touching the survivors' caches
    /// or RNG streams (ragged completion).
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::Generate`] if a step's softmax
    /// degenerates; walks are sampled position-by-position in walk order, so
    /// the first failing (position, walk) pair reports first.
    ///
    /// # Panics
    ///
    /// Panics if `rngs` and `lens` disagree, the batch exceeds the state's
    /// width, any length reaches `max_len`, or the temperature is not
    /// positive.
    pub fn sample_batch_with<R: Rng>(
        &self,
        state: &mut BatchDecodeState,
        lens: &[usize],
        temperature: f64,
        rngs: &mut [R],
    ) -> Result<Vec<Vec<usize>>> {
        assert_eq!(lens.len(), rngs.len(), "one RNG stream per walk");
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(lens.iter().all(|&l| l < self.cfg.max_len), "len exceeds max_len");
        let n = lens.len();
        state.reset(n);
        let inv_t = 1.0 / temperature;
        let mut seqs: Vec<Vec<usize>> = lens.iter().map(|&l| Vec::with_capacity(l)).collect();
        // active[row] = walk index owning state row `row`.
        let mut active: Vec<usize> = (0..n).collect();
        let mut tokens = vec![self.bos(); n];
        // Retire zero-length requests before the first step.
        for row in (0..active.len()).rev() {
            if lens[active[row]] == 0 {
                state.retire(row);
                active.remove(row);
                tokens.remove(row);
            }
        }
        while !active.is_empty() {
            let m = active.len();
            self.step_batch(state, &tokens[..m]);
            for (row, &walk) in active.iter().enumerate() {
                let tok = sample_scaled_softmax(
                    state.logits.row(row),
                    inv_t,
                    &mut state.weights,
                    &mut rngs[walk],
                )?;
                seqs[walk].push(tok);
                tokens[row] = tok;
            }
            for row in (0..active.len()).rev() {
                let walk = active[row];
                if seqs[walk].len() == lens[walk] {
                    state.retire(row);
                    active.remove(row);
                    tokens.remove(row);
                }
            }
        }
        Ok(seqs)
    }

    /// One incremental decode step: consumes `token` (a vocabulary id, or
    /// [`TransformerLm::bos`] to start a sequence) at the state's current
    /// position and returns the next-token logits row. Costs one row of
    /// work per layer — O(T·d) for a prefix of length T — instead of
    /// re-forwarding the whole prefix, and is bit-exact with the
    /// corresponding row of [`TransformerLm::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different shape, the position
    /// reached `max_len`, or `token` exceeds the vocabulary (BOS included).
    pub fn step<'s>(&self, state: &'s mut DecodeState, token: usize) -> &'s [f64] {
        assert_eq!(state.d_model, self.cfg.d_model, "decode state width mismatch");
        assert_eq!(state.blocks.len(), self.cfg.layers, "decode state depth mismatch");
        assert_eq!(state.max_len, self.cfg.max_len, "decode state length mismatch");
        assert!(state.pos < self.cfg.max_len, "decode position past max_len");
        assert!(token <= self.cfg.vocab, "token id {token} out of range");
        let pos = state.pos;
        // x = tok[token] + pos[position], exactly as the batched forward
        // sums the two embedding lookups.
        let tok_row = self.tok.vector(token);
        let pos_row = self.pos.vector(pos);
        for ((o, &tv), &pv) in state.rows.x.iter_mut().zip(tok_row).zip(pos_row) {
            *o = tv + pv;
        }
        for (b, cache) in self.blocks.iter().zip(state.blocks.iter_mut()) {
            b.step(pos, cache, &mut state.rows);
        }
        self.ln_f.forward_row(&state.rows.x, &mut state.rows.norm);
        self.head.forward_row(&state.rows.norm, &mut state.logits);
        state.pos = pos + 1;
        &state.logits
    }

    /// Samples a sequence of `len` tokens autoregressively at the given
    /// temperature, using the model's internal (lazily-created, reused)
    /// decode state. Identical to the pre-KV-cache sampler token-for-token
    /// at any seed; see [`TransformerLm::sample_ref`].
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::Generate`] if a step's softmax
    /// degenerates (zero or non-finite weight sum).
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        let mut state = self.decode_scratch.take().unwrap_or_else(|| self.decode_state());
        let out = self.sample_with(&mut state, len, temperature, rng);
        self.decode_scratch = Some(state);
        out
    }

    /// [`TransformerLm::sample`] against a caller-owned [`DecodeState`]
    /// (reset on entry) — the serving path, where one state allocation is
    /// shared across a whole batch of requests.
    pub fn sample_with<R: Rng + ?Sized>(
        &self,
        state: &mut DecodeState,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(len < self.cfg.max_len, "len exceeds max_len");
        state.reset();
        let inv_t = 1.0 / temperature;
        let mut seq = Vec::with_capacity(len);
        let mut tok = self.bos();
        for _ in 0..len {
            self.step(state, tok);
            tok = sample_scaled_softmax(&state.logits, inv_t, &mut state.weights, rng)?;
            seq.push(tok);
        }
        Ok(seq)
    }

    /// Reference sampler: re-forwards the whole prefix for every token (the
    /// pre-KV-cache O(T²) path). Kept as the ground truth for the decode
    /// parity tests and the before/after numbers in `BENCH_sampling.json`.
    pub fn sample_ref<R: Rng + ?Sized>(
        &mut self,
        len: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(len < self.cfg.max_len, "len exceeds max_len");
        // Forward over the current prefix plus a placeholder last token: row
        // i of forward(seq) predicts seq[i], so forwarding `seq + [0]` and
        // reading the last row predicts the next token (the placeholder is
        // sliced off before the model sees it).
        let mut probe: Vec<usize> = Vec::with_capacity(len + 1);
        probe.push(0);
        let mut weights: Vec<f64> = Vec::with_capacity(self.cfg.vocab);
        let inv_t = 1.0 / temperature;
        for _ in 0..len {
            let logits = self.forward(&probe);
            let tok =
                sample_scaled_softmax(logits.row(logits.rows() - 1), inv_t, &mut weights, rng)?;
            *probe.last_mut().expect("probe is never empty") = tok;
            probe.push(0);
        }
        probe.pop();
        Ok(probe)
    }
}

impl HasParams for TransformerLm {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.for_each_param(f);
        self.pos.for_each_param(f);
        for b in &mut self.blocks {
            b.for_each_param(f);
        }
        self.ln_f.for_each_param(f);
        self.head.for_each_param(f);
    }
}

impl fairgen_graph::Codec for TransformerConfig {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.vocab);
        enc.put_usize(self.d_model);
        enc.put_usize(self.heads);
        enc.put_usize(self.layers);
        enc.put_usize(self.max_len);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let cfg = TransformerConfig {
            vocab: dec.take_usize()?,
            d_model: dec.take_usize()?,
            heads: dec.take_usize()?,
            layers: dec.take_usize()?,
            max_len: dec.take_usize()?,
        };
        if cfg.vocab == 0
            || cfg.layers == 0
            || cfg.max_len < 2
            || cfg.heads == 0
            || !cfg.d_model.is_multiple_of(cfg.heads)
        {
            return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                detail: format!("degenerate transformer config {cfg:?}"),
            });
        }
        Ok(cfg)
    }
}

impl fairgen_graph::Codec for TransformerLm {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        fairgen_graph::Codec::encode(&self.cfg, enc);
        fairgen_graph::Codec::encode(&self.tok, enc);
        fairgen_graph::Codec::encode(&self.pos, enc);
        enc.put_seq(&self.blocks);
        fairgen_graph::Codec::encode(&self.ln_f, enc);
        fairgen_graph::Codec::encode(&self.head, enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let cfg = <TransformerConfig as fairgen_graph::Codec>::decode(dec)?;
        let tok = <Embedding as fairgen_graph::Codec>::decode(dec)?;
        let pos = <Embedding as fairgen_graph::Codec>::decode(dec)?;
        let blocks: Vec<Block> = dec.take_seq()?;
        let ln_f = <LayerNorm as fairgen_graph::Codec>::decode(dec)?;
        let head = <Linear as fairgen_graph::Codec>::decode(dec)?;
        let corrupt =
            |detail: String| fairgen_graph::FairGenError::CorruptCheckpoint { detail };
        if tok.vocab() != cfg.vocab + 1 || tok.dim() != cfg.d_model {
            return Err(corrupt(format!(
                "token table {}×{} disagrees with config {cfg:?}",
                tok.vocab(),
                tok.dim()
            )));
        }
        if pos.vocab() != cfg.max_len || pos.dim() != cfg.d_model {
            return Err(corrupt(format!(
                "position table {}×{} disagrees with config {cfg:?}",
                pos.vocab(),
                pos.dim()
            )));
        }
        if blocks.len() != cfg.layers
            || blocks
                .iter()
                .any(|b| b.attn.d_model() != cfg.d_model || b.attn.heads() != cfg.heads)
        {
            return Err(corrupt(format!(
                "{} decoded blocks disagree with config {cfg:?}",
                blocks.len()
            )));
        }
        if ln_f.dim() != cfg.d_model
            || head.input_dim() != cfg.d_model
            || head.output_dim() != cfg.vocab
        {
            return Err(corrupt(format!("output head disagrees with config {cfg:?}")));
        }
        Ok(TransformerLm {
            cfg,
            tok,
            pos,
            blocks,
            ln_f,
            head,
            cache_len: 0,
            decode_scratch: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny(vocab: usize) -> TransformerLm {
        let mut rng = StdRng::seed_from_u64(7);
        TransformerLm::new(
            TransformerConfig { vocab, d_model: 8, heads: 2, layers: 1, max_len: 8 },
            &mut rng,
        )
    }

    #[test]
    fn forward_shape_matches_sequence() {
        let mut lm = tiny(5);
        let logits = lm.forward(&[1, 2, 3]);
        assert_eq!((logits.rows(), logits.cols()), (3, 5));
    }

    #[test]
    fn full_model_gradients_match_finite_differences() {
        let mut lm = tiny(4);
        let seq = [1usize, 3, 0];
        check_param_gradients(
            &mut lm,
            |m| {
                let logits = m.forward(&seq);
                let (loss, dlogits) = cross_entropy(&logits, &seq, None);
                m.backward(&dlogits);
                loss
            },
            1e-5,
            2e-4,
        );
    }

    #[test]
    fn overfits_single_sequence() {
        let mut lm = tiny(6);
        let seq = [2usize, 4, 1, 5];
        let mut opt = Adam::new(0.01);
        let initial = lm.nll(&seq);
        for _ in 0..300 {
            lm.zero_grad();
            lm.train_step(&seq, 1.0);
            opt.step(&mut lm);
        }
        let final_nll = lm.nll(&seq);
        assert!(final_nll < initial * 0.2, "nll did not drop enough: {initial} → {final_nll}");
    }

    #[test]
    fn negative_weight_raises_nll() {
        let mut lm = tiny(5);
        let seq = [0usize, 1, 2];
        let mut opt = Adam::new(0.01);
        let initial = lm.nll(&seq);
        for _ in 0..100 {
            lm.zero_grad();
            lm.train_step(&seq, -0.5);
            opt.step(&mut lm);
        }
        assert!(lm.nll(&seq) > initial, "unlikelihood training must raise NLL");
    }

    #[test]
    fn log_probs_sum_matches_nll() {
        let mut lm = tiny(5);
        let seq = [1usize, 2, 3, 4];
        let lp = lm.log_probs(&seq);
        let nll = lm.nll(&seq);
        let mean_lp: f64 = lp.iter().sum::<f64>() / lp.len() as f64;
        assert!((nll + mean_lp).abs() < 1e-9);
    }

    #[test]
    fn samples_are_in_vocab() {
        let mut lm = tiny(7);
        let mut rng = StdRng::seed_from_u64(11);
        let s = lm.sample(6, 1.0, &mut rng).expect("sample");
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|&t| t < 7));
    }

    #[test]
    fn incremental_sampling_matches_reference_bit_for_bit() {
        let mut lm = tiny(6);
        for seed in 0..8u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let inc = lm.sample(6, 0.8, &mut r1).expect("incremental");
            let full = lm.sample_ref(6, 0.8, &mut r2).expect("reference");
            assert_eq!(inc, full, "seed {seed}");
        }
    }

    #[test]
    fn step_logits_match_forward_rows_bitwise() {
        let mut lm = tiny(5);
        let seq = [1usize, 4, 0, 2];
        let logits = lm.forward(&seq);
        let mut state = lm.decode_state();
        let bos = lm.bos();
        let mut prev = bos;
        for (i, &t) in seq.iter().enumerate() {
            let row: Vec<f64> = lm.step(&mut state, prev).to_vec();
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), logits.get(i, c).to_bits(), "row {i} col {c} diverged");
            }
            prev = t;
        }
        assert_eq!(state.pos(), seq.len());
    }

    #[test]
    fn decode_state_reuse_is_deterministic() {
        let mut lm = tiny(5);
        let draw = |lm: &mut TransformerLm| {
            let mut rng = StdRng::seed_from_u64(3);
            lm.sample(5, 1.0, &mut rng).expect("sample")
        };
        let first = draw(&mut lm);
        // Second call reuses the internal scratch; reset must make it
        // indistinguishable from a fresh state.
        assert_eq!(first, draw(&mut lm));
    }

    #[test]
    fn sampling_follows_trained_distribution() {
        let mut lm = tiny(4);
        let seq = [3usize, 3, 3, 3];
        let mut opt = Adam::new(0.02);
        for _ in 0..200 {
            lm.zero_grad();
            lm.train_step(&seq, 1.0);
            opt.step(&mut lm);
        }
        let mut rng = StdRng::seed_from_u64(13);
        let samples = lm.sample(4, 0.5, &mut rng).expect("sample");
        let threes = samples.iter().filter(|&&t| t == 3).count();
        assert!(threes >= 3, "expected mostly 3s, got {samples:?}");
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn too_long_sequence_panics() {
        let mut lm = tiny(5);
        let _ = lm.forward(&[0; 10]);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut lm = tiny(5);
        let _ = lm.forward(&[]);
    }
}
