//! Multi-layer perceptrons — the discriminator `d_ω` of Section II-B (M2)
//! is "a three-layer MLP".

use rand::Rng;

use crate::activation::Activation;
use crate::linear::Linear;
use crate::mat::Mat;
use crate::param::{HasParams, Param};

/// An MLP with a hidden activation after every layer except the last.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    act: Activation,
    pre_acts: Vec<Mat>,
}

/// Caller-owned inference scratch for [`Mlp::forward_row`] /
/// [`Mlp::forward_rows`]: one activation matrix per layer, sized for a
/// caller-chosen batch width. Create once via [`Mlp::scratch`] and reuse
/// across any number of calls — the step paths allocate nothing.
#[derive(Clone, Debug)]
pub struct MlpScratch {
    acts: Vec<Mat>,
}

impl MlpScratch {
    /// The batch width this scratch was sized for.
    pub fn width(&self) -> usize {
        self.acts.first().map_or(0, Mat::rows)
    }
}

impl Mlp {
    /// Builds an MLP from layer widths, e.g. `[in, h1, h2, out]` for the
    /// paper's three-layer discriminator.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], act: Activation, rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Mlp { layers, act, pre_acts: Vec::new() }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").input_dim()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// Forward over a batch (`B × in`), caching activations.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        self.pre_acts.clear();
        let mut h = x.clone();
        let depth = self.layers.len();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let pre = layer.forward(&h);
            if i + 1 < depth {
                self.pre_acts.push(pre.clone());
                h = self.act.forward(&pre);
            } else {
                h = pre;
            }
        }
        h
    }

    /// Inference-only forward (no caches touched).
    pub fn forward_inference(&self, x: &Mat) -> Mat {
        let mut h = x.clone();
        let depth = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward_inference(&h);
            h = if i + 1 < depth { self.act.forward(&pre) } else { pre };
        }
        h
    }

    /// Builds inference scratch sized for batches of up to `width` rows
    /// (single-row callers pass 1).
    pub fn scratch(&self, width: usize) -> MlpScratch {
        MlpScratch {
            acts: self
                .layers
                .iter()
                .map(|l| Mat::zeros(width.max(1), l.output_dim()))
                .collect(),
        }
    }

    /// Single-row inference: runs one input row through the network without
    /// touching training caches or allocating — the per-request step path
    /// for serving callers that classify one node at a time. Matches the
    /// corresponding row of [`Mlp::forward_inference`] bit-for-bit
    /// (asserted in this module's tests). The returned slice borrows the
    /// last layer's scratch row.
    pub fn forward_row<'s>(&self, x: &[f64], scratch: &'s mut MlpScratch) -> &'s [f64] {
        assert_eq!(x.len(), self.input_dim(), "input width mismatch");
        let depth = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = scratch.acts.split_at_mut(i);
            let input: &[f64] = if i == 0 { x } else { prev[i - 1].row(0) };
            layer.forward_row(input, rest[0].row_mut(0));
            if i + 1 < depth {
                rest[0].row_mut(0).iter_mut().for_each(|v| *v = self.act.apply(*v));
            }
        }
        scratch.acts[depth - 1].row(0)
    }

    /// Batched inference over the first `m` rows of `x`: one prefix GEMM
    /// per layer (see [`Linear::forward_rows`]), bit-exact per row with
    /// [`Mlp::forward_row`] and [`Mlp::forward_inference`]. Rows `m..` of
    /// the returned matrix hold stale scratch.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the scratch width or `x` is misshapen.
    pub fn forward_rows<'s>(&self, m: usize, x: &Mat, scratch: &'s mut MlpScratch) -> &'s Mat {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let depth = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = scratch.acts.split_at_mut(i);
            let input: &Mat = if i == 0 { x } else { &prev[i - 1] };
            layer.forward_rows(m, input, &mut rest[0]);
            if i + 1 < depth {
                for r in 0..m {
                    rest[0].row_mut(r).iter_mut().for_each(|v| *v = self.act.apply(*v));
                }
            }
        }
        &scratch.acts[depth - 1]
    }

    /// Backward from `dout`; returns `dx`.
    pub fn backward(&mut self, dout: &Mat) -> Mat {
        let depth = self.layers.len();
        let mut grad = dout.clone();
        for i in (0..depth).rev() {
            grad = self.layers[i].backward(&grad);
            if i > 0 {
                grad = self.act.backward(&self.pre_acts[i - 1], &grad);
            }
        }
        grad
    }
}

impl HasParams for Mlp {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.for_each_param(f);
        }
    }
}

impl fairgen_graph::Codec for Mlp {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        fairgen_graph::Codec::encode(&self.act, enc);
        enc.put_seq(&self.layers);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let act = <Activation as fairgen_graph::Codec>::decode(dec)?;
        let layers: Vec<Linear> = dec.take_seq()?;
        if layers.is_empty() {
            return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                detail: "mlp with zero layers".into(),
            });
        }
        for pair in layers.windows(2) {
            if pair[0].output_dim() != pair[1].input_dim() {
                return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                    detail: format!(
                        "mlp layer widths disagree: {} feeds {}",
                        pair[0].output_dim(),
                        pair[1].input_dim()
                    ),
                });
            }
        }
        Ok(Mlp { layers, act, pre_acts: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_gradients;
    use crate::optim::Adam;
    use crate::softmax::cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn three_layer_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[4, 8, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 3);
        let y = mlp.forward(&Mat::zeros(5, 4));
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, &mut rng);
        let x = Mat::from_fn(4, 3, |r, c| (r as f64 - c as f64) * 0.3);
        assert_eq!(mlp.forward(&x), mlp.forward_inference(&x));
    }

    #[test]
    fn forward_row_matches_batched_inference_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&[4, 6, 6, 3], Activation::Gelu, &mut rng);
        let x = Mat::from_fn(5, 4, |r, c| ((r * 4 + c) as f64 * 0.43).sin());
        let batched = mlp.forward_inference(&x);
        let mut scratch = mlp.scratch(1);
        for r in 0..x.rows() {
            let row = mlp.forward_row(x.row(r), &mut scratch);
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), batched.get(r, c).to_bits(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn forward_rows_matches_per_row_path_bitwise_at_ragged_widths() {
        let mut rng = StdRng::seed_from_u64(8);
        let mlp = Mlp::new(&[5, 9, 9, 4], Activation::Gelu, &mut rng);
        let x = Mat::from_fn(7, 5, |r, c| ((r * 5 + c) as f64 * 0.29).cos());
        let mut row_scratch = mlp.scratch(1);
        let mut batch_scratch = mlp.scratch(7);
        for m in [0usize, 1, 3, 7] {
            let out = mlp.forward_rows(m, &x, &mut batch_scratch).clone();
            for r in 0..m {
                let row = mlp.forward_row(x.row(r), &mut row_scratch);
                for (c, &v) in row.iter().enumerate() {
                    assert_eq!(v.to_bits(), out.get(r, c).to_bits(), "m {m} row {r} col {c}");
                }
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Mat::from_fn(3, 4, |r, c| ((r + 2 * c) as f64 * 0.7).cos());
        let targets = [0usize, 1, 1];
        let mut mlp = Mlp::new(&[4, 5, 2], Activation::Tanh, &mut rng);
        check_param_gradients(
            &mut mlp,
            |m| {
                let logits = m.forward(&x);
                let (loss, dlogits) = cross_entropy(&logits, &targets, None);
                m.backward(&dlogits);
                loss
            },
            1e-5,
            1e-5,
        );
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&[2, 8, 8, 2], Activation::Tanh, &mut rng);
        let x = Mat::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let targets = [0usize, 1, 1, 0];
        let mut opt = Adam::new(0.02);
        for _ in 0..500 {
            mlp.zero_grad();
            let logits = mlp.forward(&x);
            let (_, dlogits) = cross_entropy(&logits, &targets, None);
            mlp.backward(&dlogits);
            opt.step(&mut mlp);
        }
        let logits = mlp.forward_inference(&x);
        for (r, &t) in targets.iter().enumerate() {
            let pred = if logits.get(r, 1) > logits.get(r, 0) { 1 } else { 0 };
            assert_eq!(pred, t, "row {r} misclassified");
        }
    }

    #[test]
    fn weighted_training_biases_toward_heavy_class() {
        // Two overlapping points with conflicting labels: the weighted one
        // should win.
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&[1, 4, 2], Activation::Tanh, &mut rng);
        let x = Mat::from_vec(2, 1, vec![0.5, 0.5]);
        let targets = [0usize, 1];
        let weights = [1.0, 20.0];
        let mut opt = Adam::new(0.02);
        for _ in 0..300 {
            mlp.zero_grad();
            let logits = mlp.forward(&x);
            let (_, dlogits) = cross_entropy(&logits, &targets, Some(&weights));
            mlp.backward(&dlogits);
            opt.step(&mut mlp);
        }
        let logits = mlp.forward_inference(&Mat::from_vec(1, 1, vec![0.5]));
        assert!(logits.get(0, 1) > logits.get(0, 0), "heavy class must dominate");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_widths_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Mlp::new(&[3], Activation::Relu, &mut rng);
    }
}
