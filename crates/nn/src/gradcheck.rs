//! Finite-difference gradient verification.
//!
//! Every layer's analytic backward pass is validated against centered
//! finite differences. The check perturbs each scalar parameter, re-runs the
//! loss closure, and compares the numeric derivative with the accumulated
//! gradient.

use crate::param::HasParams;

/// Verifies the analytic parameter gradients of `model` against centered
/// finite differences.
///
/// `loss_fn` must (1) run the forward pass, (2) run the backward pass so
/// gradients are accumulated, and (3) return the scalar loss. It is invoked
/// many times; it must be deterministic.
///
/// # Panics
///
/// Panics (assert) if any gradient entry deviates from the numeric estimate
/// by more than `tol` in absolute-or-relative terms.
pub fn check_param_gradients<M: HasParams>(
    model: &mut M,
    mut loss_fn: impl FnMut(&mut M) -> f64,
    eps: f64,
    tol: f64,
) {
    // Snapshot analytic gradients.
    model.zero_grad();
    let _ = loss_fn(model);
    let mut analytic: Vec<Vec<f64>> = Vec::new();
    model.for_each_param(&mut |p| analytic.push(p.grad.as_slice().to_vec()));

    // Count parameters to iterate positionally.
    let mut shapes: Vec<usize> = Vec::new();
    model.for_each_param(&mut |p| shapes.push(p.count()));

    for (pi, &count) in shapes.iter().enumerate() {
        // Positional indexing is load-bearing here: `idx` addresses the same
        // slot across repeated `for_each_param` traversals.
        #[allow(clippy::needless_range_loop)]
        for idx in 0..count {
            let perturb = |model: &mut M, delta: f64| {
                let mut k = 0usize;
                model.for_each_param(&mut |p| {
                    if k == pi {
                        p.value.as_mut_slice()[idx] += delta;
                    }
                    k += 1;
                });
            };
            perturb(model, eps);
            model.zero_grad();
            let lp = loss_fn(model);
            perturb(model, -2.0 * eps);
            model.zero_grad();
            let lm = loss_fn(model);
            perturb(model, eps); // restore
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[pi][idx];
            let denom = 1.0f64.max(a.abs()).max(numeric.abs());
            assert!(
                (numeric - a).abs() / denom < tol,
                "param {pi} entry {idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }
    // Leave the model with its analytic gradients restored.
    model.zero_grad();
    let _ = loss_fn(model);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::param::Param;

    /// loss = Σ x³ → grad = 3x².
    struct Cubic {
        x: Param,
    }

    impl HasParams for Cubic {
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.x);
        }
    }

    #[test]
    fn accepts_correct_gradient() {
        let mut c = Cubic { x: Param::new(Mat::from_vec(1, 3, vec![0.5, -1.0, 2.0])) };
        check_param_gradients(
            &mut c,
            |m| {
                let loss: f64 = m.x.value.as_slice().iter().map(|&x| x * x * x).sum();
                let g: Vec<f64> = m.x.value.as_slice().iter().map(|&x| 3.0 * x * x).collect();
                m.x.grad = Mat::from_vec(1, 3, g);
                loss
            },
            1e-5,
            1e-6,
        );
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn rejects_wrong_gradient() {
        let mut c = Cubic { x: Param::new(Mat::from_vec(1, 2, vec![1.0, 2.0])) };
        check_param_gradients(
            &mut c,
            |m| {
                let loss: f64 = m.x.value.as_slice().iter().map(|&x| x * x * x).sum();
                // Deliberately wrong gradient.
                let g: Vec<f64> = m.x.value.as_slice().iter().map(|&x| 2.0 * x).collect();
                m.x.grad = Mat::from_vec(1, 2, g);
                loss
            },
            1e-5,
            1e-6,
        );
    }
}
