//! Dense row-major `f64` matrices with the GEMM variants backprop needs.

use rand::Rng;

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Mat { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization for a `fan_in → fan_out` weight.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
    }

    /// Small-scale uniform initialization (for embeddings).
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable entry accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self × other` — `(r×k)(k×c) → r×c`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` — `(k×r)ᵀ(k×c) → r×c`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Mat::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` — `(r×k)(c×k)ᵀ → r×c`.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale · other`.
    pub fn add_scaled(&mut self, other: &Mat, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&mut self, s: f64) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// The transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }
}

/// Checkpoint-decode helper: rejects a matrix whose shape does not match
/// what the surrounding model declares.
pub(crate) fn check_shape(
    m: &Mat,
    rows: usize,
    cols: usize,
    what: &str,
) -> fairgen_graph::Result<()> {
    if m.rows() != rows || m.cols() != cols {
        return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
            detail: format!(
                "{what}: expected {rows}×{cols}, checkpoint holds {}×{}",
                m.rows(),
                m.cols()
            ),
        });
    }
    Ok(())
}

impl fairgen_graph::Codec for Mat {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.rows);
        enc.put_usize(self.cols);
        enc.put_f64_slice(&self.data);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let rows = dec.take_usize()?;
        let cols = dec.take_usize()?;
        let data = dec.take_f64_vec()?;
        if data.len() != rows.saturating_mul(cols) {
            return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                detail: format!(
                    "matrix declared {rows}×{cols} but carries {} entries",
                    data.len()
                ),
            });
        }
        Ok(Mat { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a() -> Mat {
        Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> Mat {
        Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_known() {
        let c = a().matmul(&b());
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let at = a().transpose();
        let direct = at.matmul(&b().transpose());
        let fused = a().matmul_tn(&b().transpose());
        assert_eq!(direct, fused);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let direct = a().matmul(&b());
        let fused = a().matmul_nt(&b().transpose());
        assert_eq!(direct, fused);
    }

    #[test]
    fn transpose_involution() {
        assert_eq!(a().transpose().transpose(), a());
    }

    #[test]
    fn add_and_scale() {
        let mut m = a();
        m.add_assign(&a());
        m.scale(0.5);
        assert_eq!(m, a());
        m.add_scaled(&a(), -1.0);
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn row_access() {
        let m = a();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mat::xavier(16, 16, &mut rng);
        let limit = (6.0 / 32.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut m = a();
        m.fill_zero();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let _ = a().matmul(&a());
    }

    #[test]
    fn sq_norm() {
        let m = Mat::from_vec(1, 3, vec![3.0, 0.0, 4.0]);
        assert_eq!(m.sq_norm(), 25.0);
    }
}
