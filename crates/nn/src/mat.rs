//! Dense row-major `f64` matrices with the GEMM variants backprop needs.

use rand::Rng;

/// `k`-panel height of the blocked GEMM kernel (see [`Mat::matmul_into`]):
/// 128 rows × up-to-512 columns of `f64` keeps the streamed `B` panel within
/// L2 while the `A` slice stays in L1.
const GEMM_KC: usize = 128;

/// Output-row micro-block of the GEMM kernel: each `B` row loaded from the
/// streamed panel is applied to up to `GEMM_MR` output rows before moving
/// on, cutting `B` traffic by that factor while the micro-block of output
/// rows stays in L1. The batched decode path (M walks per token) is the
/// shape this pays off most for.
const GEMM_MR: usize = 4;

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Mat { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization for a `fan_in → fan_out` weight.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
    }

    /// Small-scale uniform initialization (for embeddings).
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable entry accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self × other` — `(r×k)(k×c) → r×c`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self × other` without allocating (`out` must be `r×c`).
    ///
    /// This is the shared blocked GEMM kernel: `B` is walked in `k`-panels of
    /// `GEMM_KC` rows so the streamed panel stays cache-resident across the
    /// row sweep, and the inner loop is a unit-stride `row()`-slice axpy the
    /// autovectorizer handles. Every output element accumulates its `k`
    /// contributions in ascending order regardless of blocking, so this
    /// kernel, [`vecmat_into`], and the packed [`Mat::matmul_nt`] path all
    /// produce bit-identical results — the incremental decode paths rely on
    /// that to reproduce full-forward activations exactly.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        self.matmul_prefix_into(self.rows, other, out);
    }

    /// `out[..m] = self[..m] × other` — the blocked GEMM kernel restricted
    /// to the first `m` rows of `self` and `out`. Rows `m..` of `out` are
    /// left untouched, so batched decode scratch sized for the widest batch
    /// serves every narrower (ragged) step without reallocation.
    ///
    /// Accumulation order per output element is identical to
    /// [`Mat::matmul_into`] (and therefore to [`vecmat_into`]): ascending
    /// `k` within each panel, panels in ascending order. The `GEMM_MR`-row
    /// micro-blocking only reorders *across* output rows, never within one.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds either row count, on an inner-dimension
    /// mismatch, or if `out` is narrower than `other`.
    pub fn matmul_prefix_into(&self, m: usize, other: &Mat, out: &mut Mat) {
        assert!(m <= self.rows && m <= out.rows, "matmul prefix exceeds row count");
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(out.cols, other.cols, "matmul output shape mismatch");
        let n = other.cols;
        out.data[..m * n].iter_mut().for_each(|x| *x = 0.0);
        for kb in (0..self.cols).step_by(GEMM_KC) {
            let kend = (kb + GEMM_KC).min(self.cols);
            for ib in (0..m).step_by(GEMM_MR) {
                let iend = (ib + GEMM_MR).min(m);
                for dk in 0..kend - kb {
                    let b_row = other.row(kb + dk);
                    for i in ib..iend {
                        let a = self.data[i * self.cols + kb + dk];
                        let out_row = &mut out.data[i * n..(i + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
    }

    /// Removes row `row` from the first `m` rows by shifting rows
    /// `row+1..m` up one slot; rows `m..` are untouched. Used by the batched
    /// decoders to compact carried per-walk state (LSTM `h`/`c`) when a walk
    /// retires mid-batch.
    ///
    /// # Panics
    ///
    /// Panics if `row >= m` or `m` exceeds the row count.
    pub fn remove_row_prefix(&mut self, row: usize, m: usize) {
        assert!(row < m && m <= self.rows, "row removal out of range");
        let c = self.cols;
        self.data.copy_within((row + 1) * c..m * c, row * c);
    }

    /// `selfᵀ × other` — `(k×r)ᵀ(k×c) → r×c`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Mat::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` — `(r×k)(c×k)ᵀ → r×c`.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        // Packing Bᵀ once turns every inner loop into the unit-stride axpy
        // kernel of `matmul_into`; the N×K copy amortizes as soon as a few
        // rows reuse it. Single-row calls keep the dot loop (packing would
        // cost as much as the multiply). Both paths sum in ascending `k`, so
        // the choice never changes the result bit-wise.
        if self.rows >= 4 {
            return self.matmul(&other.transpose());
        }
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale · other`.
    pub fn add_scaled(&mut self, other: &Mat, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&mut self, s: f64) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// The transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }
}

/// `out = x × b` for a single row `x` (`x.len() == b.rows()`).
///
/// The single-row face of the blocked kernel: contributions accumulate in
/// ascending `k`, bit-identical to the corresponding row of
/// [`Mat::matmul`]. The incremental decode steps are built on this.
pub fn vecmat_into(x: &[f64], b: &Mat, out: &mut [f64]) {
    assert_eq!(x.len(), b.rows(), "vecmat shape mismatch");
    assert_eq!(out.len(), b.cols(), "vecmat output shape mismatch");
    out.iter_mut().for_each(|o| *o = 0.0);
    for (k, &a) in x.iter().enumerate() {
        let b_row = b.row(k);
        for (o, &bv) in out.iter_mut().zip(b_row) {
            *o += a * bv;
        }
    }
}

/// Checkpoint-decode helper: rejects a matrix whose shape does not match
/// what the surrounding model declares.
pub(crate) fn check_shape(
    m: &Mat,
    rows: usize,
    cols: usize,
    what: &str,
) -> fairgen_graph::Result<()> {
    if m.rows() != rows || m.cols() != cols {
        return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
            detail: format!(
                "{what}: expected {rows}×{cols}, checkpoint holds {}×{}",
                m.rows(),
                m.cols()
            ),
        });
    }
    Ok(())
}

impl fairgen_graph::Codec for Mat {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.rows);
        enc.put_usize(self.cols);
        enc.put_f64_slice(&self.data);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let rows = dec.take_usize()?;
        let cols = dec.take_usize()?;
        let data = dec.take_f64_vec()?;
        if data.len() != rows.saturating_mul(cols) {
            return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                detail: format!(
                    "matrix declared {rows}×{cols} but carries {} entries",
                    data.len()
                ),
            });
        }
        Ok(Mat { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a() -> Mat {
        Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> Mat {
        Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_known() {
        let c = a().matmul(&b());
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let at = a().transpose();
        let direct = at.matmul(&b().transpose());
        let fused = a().matmul_tn(&b().transpose());
        assert_eq!(direct, fused);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let direct = a().matmul(&b());
        let fused = a().matmul_nt(&b().transpose());
        assert_eq!(direct, fused);
    }

    #[test]
    fn transpose_involution() {
        assert_eq!(a().transpose().transpose(), a());
    }

    #[test]
    fn add_and_scale() {
        let mut m = a();
        m.add_assign(&a());
        m.scale(0.5);
        assert_eq!(m, a());
        m.add_scaled(&a(), -1.0);
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn row_access() {
        let m = a();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mat::xavier(16, 16, &mut rng);
        let limit = (6.0 / 32.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut m = a();
        m.fill_zero();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let _ = a().matmul(&a());
    }

    #[test]
    fn sq_norm() {
        let m = Mat::from_vec(1, 3, vec![3.0, 0.0, 4.0]);
        assert_eq!(m.sq_norm(), 25.0);
    }

    /// Naive ikj reference with the same ascending-`k` accumulation order as
    /// the blocked kernel.
    fn matmul_naive(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                for j in 0..b.cols() {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a.get(i, k) * b.get(k, j));
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_across_panel_boundaries() {
        // k = 300 spans three GEMM_KC panels (128, 128, 44).
        let mut rng = StdRng::seed_from_u64(9);
        let a = Mat::uniform(7, 300, 1.0, &mut rng);
        let b = Mat::uniform(300, 5, 1.0, &mut rng);
        assert_eq!(a.matmul(&b), matmul_naive(&a, &b));
    }

    #[test]
    fn matmul_into_reuses_output_allocation() {
        let mut out = Mat::from_fn(2, 2, |_, _| 99.0); // stale contents overwritten
        a().matmul_into(&b(), &mut out);
        assert_eq!(out.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn vecmat_matches_matmul_row_bitwise() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Mat::uniform(3, 150, 1.0, &mut rng);
        let w = Mat::uniform(150, 40, 1.0, &mut rng);
        let full = a.matmul(&w);
        let mut row = vec![f64::NAN; 40];
        for r in 0..a.rows() {
            vecmat_into(a.row(r), &w, &mut row);
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), full.get(r, c).to_bits(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn matmul_prefix_matches_full_bitwise_and_leaves_tail_rows() {
        // 9 rows spans two MR=4 micro-blocks plus a remainder; k = 150
        // spans two GEMM_KC panels.
        let mut rng = StdRng::seed_from_u64(12);
        let a = Mat::uniform(9, 150, 1.0, &mut rng);
        let w = Mat::uniform(150, 40, 1.0, &mut rng);
        let full = a.matmul(&w);
        for m in [0usize, 1, 3, 4, 5, 9] {
            let mut out = Mat::from_fn(9, 40, |_, _| -7.5);
            a.matmul_prefix_into(m, &w, &mut out);
            for r in 0..m {
                for c in 0..40 {
                    assert_eq!(
                        out.get(r, c).to_bits(),
                        full.get(r, c).to_bits(),
                        "m {m} ({r},{c})"
                    );
                }
            }
            for r in m..9 {
                assert!(out.row(r).iter().all(|&v| v == -7.5), "m {m}: tail row {r} touched");
            }
        }
    }

    #[test]
    fn remove_row_prefix_shifts_rows_up() {
        let mut m = Mat::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        m.remove_row_prefix(1, 3);
        assert_eq!(m.row(0), &[0.0, 1.0]);
        assert_eq!(m.row(1), &[4.0, 5.0]);
        assert_eq!(m.row(3), &[6.0, 7.0]); // beyond the prefix: untouched
    }

    #[test]
    fn packed_matmul_nt_matches_dot_path_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Mat::uniform(6, 37, 1.0, &mut rng); // ≥ 4 rows → packed path
        let b = Mat::uniform(9, 37, 1.0, &mut rng);
        let packed = a.matmul_nt(&b);
        // Dot-product reference (the < 4-row path).
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let acc: f64 = a.row(i).iter().zip(b.row(j)).fold(0.0, |s, (&x, &y)| s + x * y);
                assert_eq!(acc.to_bits(), packed.get(i, j).to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_wrong_output_shape_panics() {
        let mut out = Mat::zeros(2, 3);
        a().matmul_into(&b(), &mut out);
    }
}
