//! Checkpoint codec roundtrips for the nn substrate: a reloaded model must
//! be *bit-identical* in behaviour — same logits, same samples per seed.

use fairgen_graph::codec::{open_value, seal_value, Codec, Decoder, Encoder};
use fairgen_graph::FairGenError;
use fairgen_nn::{Activation, LstmLm, Mat, Mlp, TransformerConfig, TransformerLm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn roundtrip<T: Codec>(value: &T) -> T {
    let bytes = seal_value("test", value);
    open_value("test", &bytes).expect("roundtrip decodes")
}

#[test]
fn mat_roundtrips_bit_exactly() {
    let m = Mat::from_vec(2, 3, vec![1.5, -0.0, f64::NAN, f64::INFINITY, 1e-300, -2.25]);
    let back = roundtrip(&m);
    assert_eq!(back.rows(), 2);
    assert_eq!(back.cols(), 3);
    for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn mat_rejects_inconsistent_shape() {
    let mut enc = Encoder::new();
    enc.put_usize(2);
    enc.put_usize(3);
    enc.put_f64_slice(&[1.0; 5]); // 5 entries for a 2×3 matrix
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    assert!(matches!(
        <Mat as Codec>::decode(&mut dec),
        Err(FairGenError::CorruptCheckpoint { .. })
    ));
}

#[test]
fn transformer_lm_roundtrip_preserves_behaviour() {
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = TransformerConfig { vocab: 9, d_model: 8, heads: 2, layers: 2, max_len: 8 };
    let mut lm = TransformerLm::new(cfg, &mut rng);
    let mut back = roundtrip(&lm);
    let seq = [1usize, 4, 7];
    assert_eq!(lm.nll(&seq).to_bits(), back.nll(&seq).to_bits());
    let mut r1 = StdRng::seed_from_u64(11);
    let mut r2 = StdRng::seed_from_u64(11);
    assert_eq!(
        lm.sample(6, 0.8, &mut r1).expect("sample"),
        back.sample(6, 0.8, &mut r2).expect("sample")
    );
}

#[test]
fn lstm_lm_roundtrip_preserves_behaviour() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut lm = LstmLm::new(7, 6, 10, &mut rng);
    let mut back = roundtrip(&lm);
    let seq = [2usize, 6, 0];
    assert_eq!(lm.nll(&seq).to_bits(), back.nll(&seq).to_bits());
    let mut r1 = StdRng::seed_from_u64(5);
    let mut r2 = StdRng::seed_from_u64(5);
    assert_eq!(
        lm.sample(5, 1.0, &mut r1).expect("sample"),
        back.sample(5, 1.0, &mut r2).expect("sample")
    );
}

#[test]
fn mlp_roundtrip_preserves_inference() {
    let mut rng = StdRng::seed_from_u64(5);
    let mlp = Mlp::new(&[4, 8, 8, 3], Activation::Tanh, &mut rng);
    let back = roundtrip(&mlp);
    let x = Mat::from_fn(5, 4, |r, c| ((r * 3 + c) as f64 * 0.37).sin());
    assert_eq!(mlp.forward_inference(&x), back.forward_inference(&x));
}

#[test]
fn corrupt_activation_discriminant_rejected() {
    let mut enc = Encoder::new();
    enc.put_u8(200);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    assert!(matches!(
        <Activation as Codec>::decode(&mut dec),
        Err(FairGenError::CorruptCheckpoint { detail }) if detail.contains("activation")
    ));
}

#[test]
fn truncated_transformer_checkpoint_rejected() {
    let mut rng = StdRng::seed_from_u64(6);
    let cfg = TransformerConfig { vocab: 5, d_model: 4, heads: 2, layers: 1, max_len: 6 };
    let lm = TransformerLm::new(cfg, &mut rng);
    let bytes = seal_value("test", &lm);
    // Cutting the container anywhere must produce an error, never a panic
    // or a silently wrong model.
    for cut in [10, bytes.len() / 2, bytes.len() - 1] {
        assert!(open_value::<TransformerLm>("test", &bytes[..cut]).is_err(), "cut at {cut}");
    }
}
