//! Parallel-vs-sequential parity: multi-core walk sampling and row-chunked
//! batch forwards must be bit-identical to their sequential counterparts at
//! every worker count.

use fairgen_nn::sample::{predraw_walks, sample_walk_batch, BatchSampler};
use fairgen_nn::{Activation, LstmLm, Mat, Mlp, TransformerConfig, TransformerLm};
use fairgen_par::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WIDTHS: [usize; 3] = [1, 2, 8];

fn transformer(vocab: usize) -> TransformerLm {
    let mut rng = StdRng::seed_from_u64(40);
    TransformerLm::new(
        TransformerConfig { vocab, d_model: 16, heads: 2, layers: 2, max_len: 12 },
        &mut rng,
    )
}

fn lstm(vocab: usize) -> LstmLm {
    let mut rng = StdRng::seed_from_u64(41);
    LstmLm::new(vocab, 8, 12, &mut rng)
}

/// The sequential reference: one shared state, one master RNG, walks drawn
/// back to back — exactly what the pre-parallel hot loops did.
fn sequential_walks<M: BatchSampler>(
    model: &M,
    count: usize,
    len: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = model.make_state();
    (0..count)
        .map(|_| model.sample_into(&mut state, len, 1.0, &mut rng).expect("sample"))
        .collect()
}

#[test]
fn transformer_batch_sampling_is_bit_identical_at_widths_1_2_8() {
    let tf = transformer(23);
    let (count, len) = (40, 9);
    for seed in [0u64, 7, 1234] {
        let reference = sequential_walks(&tf, count, len, seed);
        for width in WIDTHS {
            let pool = ThreadPool::new(width);
            let mut rng = StdRng::seed_from_u64(seed);
            let draws = predraw_walks(&mut rng, count, len);
            let batch = sample_walk_batch(&pool, &tf, count, len, 1.0, &draws).expect("batch");
            assert_eq!(batch, reference, "seed {seed}, width {width}");
        }
    }
}

#[test]
fn lstm_batch_sampling_is_bit_identical_at_widths_1_2_8() {
    let lm = lstm(17);
    let (count, len) = (40, 7);
    for seed in [3u64, 99] {
        let reference = sequential_walks(&lm, count, len, seed);
        for width in WIDTHS {
            let pool = ThreadPool::new(width);
            let mut rng = StdRng::seed_from_u64(seed);
            let draws = predraw_walks(&mut rng, count, len);
            let batch = sample_walk_batch(&pool, &lm, count, len, 1.0, &draws).expect("batch");
            assert_eq!(batch, reference, "seed {seed}, width {width}");
        }
    }
}

#[test]
fn master_rng_advances_exactly_like_the_sequential_loop() {
    // Downstream consumers (graph assembly) share the master RNG with the
    // sampling loop, so the predraw must leave it in the sequential state.
    use rand::RngCore;
    let tf = transformer(11);
    let (count, len) = (10, 6);
    let mut sequential = StdRng::seed_from_u64(5);
    let mut state = tf.make_state();
    for _ in 0..count {
        tf.sample_into(&mut state, len, 1.0, &mut sequential).expect("sample");
    }
    let mut parallel = StdRng::seed_from_u64(5);
    let _ = predraw_walks(&mut parallel, count, len);
    assert_eq!(sequential.next_u64(), parallel.next_u64());
}

#[test]
fn row_chunked_mlp_forward_matches_full_batch_bitwise() {
    // The per-cycle discriminator batches are parallelized by splitting the
    // input rows across workers; the blocked GEMM accumulates ascending-k
    // per output row, so a chunked forward must equal the fused one.
    let mut rng = StdRng::seed_from_u64(8);
    let mlp = Mlp::new(&[12, 32, 32, 5], Activation::Tanh, &mut rng);
    let n = 37;
    let x = Mat::from_fn(n, 12, |r, c| ((r * 31 + c * 7) % 13) as f64 * 0.17 - 0.8);
    let full = mlp.forward_inference(&x);
    for chunk in [1usize, 4, 16, 64] {
        let mut row = 0usize;
        while row < n {
            let hi = (row + chunk).min(n);
            let part = Mat::from_fn(hi - row, 12, |r, c| x.get(row + r, c));
            let out = mlp.forward_inference(&part);
            for r in 0..hi - row {
                for c in 0..full.cols() {
                    assert_eq!(
                        out.get(r, c).to_bits(),
                        full.get(row + r, c).to_bits(),
                        "chunk {chunk}, row {}, col {c}",
                        row + r
                    );
                }
            }
            row = hi;
        }
    }
}
