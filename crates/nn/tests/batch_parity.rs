#![recursion_limit = "512"]
//! Batched-vs-sequential decode parity: the matrix-stepped samplers (one
//! GEMM per layer per token across a batch of walks) must be bit-identical
//! to the per-walk decode path at every batch width, including ragged
//! batches where walks finish early, and `sample_walk_batch`'s matrix mode
//! must reproduce the per-walk fan-out exactly at every pool width.

use fairgen_nn::sample::{
    predraw_walks, sample_walk_batch, sample_walk_batch_per_walk, BatchSampler, MatrixSampler,
};
use fairgen_nn::{LstmLm, TransformerConfig, TransformerLm};
use fairgen_par::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The satellite widths: 1 (degenerate batch), 2, 7 (ragged vs the GEMM
/// row-blocking factor), 32 (the `MATRIX_BATCH_WIDTH` serving chunk).
const WIDTHS: [usize; 4] = [1, 2, 7, 32];

fn transformer(vocab: usize) -> TransformerLm {
    let mut rng = StdRng::seed_from_u64(50);
    TransformerLm::new(
        TransformerConfig { vocab, d_model: 16, heads: 2, layers: 2, max_len: 12 },
        &mut rng,
    )
}

fn lstm(vocab: usize) -> LstmLm {
    let mut rng = StdRng::seed_from_u64(51);
    LstmLm::new(vocab, 8, 12, &mut rng)
}

/// Per-walk oracle: walk `i` sampled alone against a fresh single-walk
/// state, drawing from its own RNG stream — what the batched path must
/// reproduce bit-for-bit on every row.
fn per_walk_oracle<M: BatchSampler>(
    model: &M,
    lens: &[usize],
    temperature: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    let mut state = model.make_state();
    lens.iter()
        .enumerate()
        .map(|(i, &len)| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            model.sample_into(&mut state, len, temperature, &mut rng).expect("oracle walk")
        })
        .collect()
}

/// The batched path over the same per-walk RNG streams as
/// [`per_walk_oracle`].
fn batched<M: MatrixSampler>(
    model: &M,
    width: usize,
    lens: &[usize],
    temperature: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    let mut state = model.make_batch_state(width);
    let mut rngs: Vec<StdRng> = (0..lens.len())
        .map(|i| StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)))
        .collect();
    model.sample_batch_into(&mut state, lens, temperature, &mut rngs).expect("batched walks")
}

#[test]
fn transformer_batched_decode_is_bit_identical_at_widths_1_2_7_32() {
    let tf = transformer(23);
    for width in WIDTHS {
        let lens = vec![9usize; width];
        for seed in [0u64, 7, 1234] {
            let reference = per_walk_oracle(&tf, &lens, 0.9, seed);
            let got = batched(&tf, width, &lens, 0.9, seed);
            assert_eq!(got, reference, "width {width}, seed {seed}");
        }
    }
}

#[test]
fn lstm_batched_decode_is_bit_identical_at_widths_1_2_7_32() {
    let lm = lstm(17);
    for width in WIDTHS {
        let lens = vec![7usize; width];
        for seed in [3u64, 99] {
            let reference = per_walk_oracle(&lm, &lens, 1.1, seed);
            let got = batched(&lm, width, &lens, 1.1, seed);
            assert_eq!(got, reference, "width {width}, seed {seed}");
        }
    }
}

#[test]
fn ragged_early_termination_does_not_perturb_survivors() {
    // Mixed lengths (zero included): walks retire mid-batch, rows compact,
    // and every surviving walk must still match its solo run exactly.
    let tf = transformer(13);
    let lm = lstm(13);
    let lens = [0usize, 5, 2, 9, 1, 9, 3, 7];
    for seed in [2u64, 41, 777] {
        let reference = per_walk_oracle(&tf, &lens, 1.0, seed);
        assert_eq!(batched(&tf, lens.len(), &lens, 1.0, seed), reference, "tf seed {seed}");
        let reference = per_walk_oracle(&lm, &lens, 1.0, seed);
        assert_eq!(batched(&lm, lens.len(), &lens, 1.0, seed), reference, "lstm seed {seed}");
    }
}

#[test]
fn matrix_walk_batch_matches_per_walk_fanout_at_pool_widths_1_2_8() {
    // The serving entry point: matrix mode must equal the per-walk fan-out
    // (and therefore the sequential loop) at every pool width, spanning
    // multiple MATRIX_BATCH_WIDTH chunks.
    let tf = transformer(19);
    let lm = lstm(19);
    let (count, len) = (70, 8);
    for pool_width in [1usize, 2, 8] {
        let pool = ThreadPool::new(pool_width);
        for seed in [5u64, 60] {
            let mut rng = StdRng::seed_from_u64(seed);
            let draws = predraw_walks(&mut rng, count, len);
            let per_walk = sample_walk_batch_per_walk(&pool, &tf, count, len, 1.0, &draws)
                .expect("per-walk");
            let matrix =
                sample_walk_batch(&pool, &tf, count, len, 1.0, &draws).expect("matrix");
            assert_eq!(matrix, per_walk, "tf pool {pool_width}, seed {seed}");

            let mut rng = StdRng::seed_from_u64(seed + 1);
            let draws = predraw_walks(&mut rng, count, len);
            let per_walk = sample_walk_batch_per_walk(&pool, &lm, count, len, 1.0, &draws)
                .expect("per-walk");
            let matrix =
                sample_walk_batch(&pool, &lm, count, len, 1.0, &draws).expect("matrix");
            assert_eq!(matrix, per_walk, "lstm pool {pool_width}, seed {seed}");
        }
    }
}

#[test]
fn kill_switch_routes_through_per_walk_path_with_identical_output() {
    // FAIRGEN_BATCH_DECODE=0 must flip the route without changing a bit.
    // (Both routes are bit-identical by construction, so this asserts the
    // flag is read per call and the fallback path stays wired.)
    let lm = lstm(11);
    let pool = ThreadPool::new(2);
    let (count, len) = (20, 6);
    let mut rng = StdRng::seed_from_u64(9);
    let draws = predraw_walks(&mut rng, count, len);
    let matrix = sample_walk_batch(&pool, &lm, count, len, 1.0, &draws).expect("matrix");
    std::env::set_var("FAIRGEN_BATCH_DECODE", "0");
    let fallback = sample_walk_batch(&pool, &lm, count, len, 1.0, &draws).expect("fallback");
    std::env::remove_var("FAIRGEN_BATCH_DECODE");
    assert_eq!(matrix, fallback);
}

/// A random small-but-valid transformer shape plus sampling inputs.
fn arb_transformer_case() -> impl Strategy<Value = (TransformerConfig, u64, Vec<usize>)> {
    (3usize..20, (0usize..3).prop_map(|i| [4usize, 8, 16][i]), 1usize..3, any::<u64>())
        .prop_flat_map(|(vocab, d_model, layers, seed)| {
            let heads = if d_model == 4 { 2 } else { 4 };
            let cfg = TransformerConfig { vocab, d_model, heads, layers, max_len: 11 };
            (Just(cfg), Just(seed), proptest::collection::vec(0usize..10, 1..8))
        })
}

/// A random small-but-valid LSTM shape plus sampling inputs:
/// `(vocab, dim, hidden, seed, lens)`.
fn arb_lstm_case() -> impl Strategy<Value = (usize, usize, usize, u64, Vec<usize>)> {
    // Nested pairs: the vendored proptest implements Strategy for tuples of
    // at most four elements.
    (
        (3usize..20, 3usize..10, 4usize..16),
        (any::<u64>(), proptest::collection::vec(0usize..12, 1..8)),
    )
        .prop_map(|((vocab, dim, hidden), (seed, lens))| (vocab, dim, hidden, seed, lens))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_transformer_configs_stay_bit_exact(case in arb_transformer_case()) {
        let (cfg, seed, lens) = case;
        let mut rng = StdRng::seed_from_u64(seed);
        let tf = TransformerLm::new(cfg, &mut rng);
        let reference = per_walk_oracle(&tf, &lens, 1.0, seed);
        prop_assert_eq!(batched(&tf, lens.len(), &lens, 1.0, seed), reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_lstm_configs_stay_bit_exact(case in arb_lstm_case()) {
        let (vocab, dim, hidden, seed, lens) = case;
        let mut rng = StdRng::seed_from_u64(seed);
        let lm = LstmLm::new(vocab, dim, hidden, &mut rng);
        let reference = per_walk_oracle(&lm, &lens, 1.0, seed);
        prop_assert_eq!(batched(&lm, lens.len(), &lens, 1.0, seed), reference);
    }
}
