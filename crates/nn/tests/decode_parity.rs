//! Bit-exact RNG parity between the KV-cached incremental samplers and the
//! full-forward reference samplers, across randomized model shapes.
//!
//! The serving layer's checkpoint-determinism guarantees (see
//! `crates/serve/tests/roundtrip.rs`) assume that sampling with a given
//! seed always draws the same token sequence; these properties pin the
//! incremental decode paths to the O(T²) reference implementation so the
//! optimization can never drift.

use fairgen_nn::param::HasParams;
use fairgen_nn::{Adam, LstmLm, TransformerConfig, TransformerLm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn transformer_incremental_matches_full_forward(
        heads in 1usize..=4,
        mult in 1usize..=3,
        layers in 1usize..=2,
        vocab in 3usize..=12,
        len in 1usize..=8,
        model_seed in 0u64..1_000,
        draw_seed in 0u64..1_000,
        temp in 1usize..=4,
    ) {
        let d_model = heads * 2 * mult;
        let cfg = TransformerConfig { vocab, d_model, heads, layers, max_len: 10 };
        let mut lm = TransformerLm::new(cfg, &mut StdRng::seed_from_u64(model_seed));
        let temperature = temp as f64 * 0.4;
        let mut r1 = StdRng::seed_from_u64(draw_seed);
        let mut r2 = StdRng::seed_from_u64(draw_seed);
        let inc = lm.sample(len, temperature, &mut r1).expect("incremental");
        let full = lm.sample_ref(len, temperature, &mut r2).expect("reference");
        prop_assert_eq!(inc, full);
    }

    #[test]
    fn transformer_step_logits_match_forward_rows(
        heads in 1usize..=2,
        layers in 1usize..=2,
        model_seed in 0u64..1_000,
        toks in proptest::collection::vec(0usize..5, 1..7),
    ) {
        let cfg = TransformerConfig { vocab: 5, d_model: heads * 4, heads, layers, max_len: 8 };
        let mut lm = TransformerLm::new(cfg, &mut StdRng::seed_from_u64(model_seed));
        let logits = lm.forward(&toks);
        let mut state = lm.decode_state();
        let mut prev = lm.bos();
        for (i, &t) in toks.iter().enumerate() {
            let row = lm.step(&mut state, prev).to_vec();
            for (c, &v) in row.iter().enumerate() {
                prop_assert_eq!(
                    v.to_bits(),
                    logits.get(i, c).to_bits(),
                    "row {} col {} diverged",
                    i,
                    c
                );
            }
            prev = t;
        }
    }

    #[test]
    fn lstm_state_carry_matches_full_forward(
        vocab in 2usize..=10,
        dim in 2usize..=6,
        hidden in 2usize..=8,
        len in 1usize..=8,
        model_seed in 0u64..1_000,
        draw_seed in 0u64..1_000,
    ) {
        let mut lm = LstmLm::new(vocab, dim, hidden, &mut StdRng::seed_from_u64(model_seed));
        let mut r1 = StdRng::seed_from_u64(draw_seed);
        let mut r2 = StdRng::seed_from_u64(draw_seed);
        let inc = lm.sample(len, 1.0, &mut r1).expect("incremental");
        let full = lm.sample_ref(len, 1.0, &mut r2).expect("reference");
        prop_assert_eq!(inc, full);
    }
}

/// Parity must also hold after training has moved the weights off their
/// initialization (and must survive interleaved train/sample cycles, which
/// is exactly how Algorithm 1 uses the generator).
#[test]
fn parity_survives_training_interleaved_with_sampling() {
    let cfg = TransformerConfig { vocab: 6, d_model: 8, heads: 2, layers: 2, max_len: 10 };
    let mut lm = TransformerLm::new(cfg, &mut StdRng::seed_from_u64(7));
    let mut opt = Adam::new(0.01);
    let seq = [2usize, 5, 1, 3];
    for round in 0..3 {
        for _ in 0..20 {
            lm.zero_grad();
            lm.train_step(&seq, 1.0);
            opt.step(&mut lm);
        }
        for seed in 0..4u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            assert_eq!(
                lm.sample(7, 0.7, &mut r1).expect("incremental"),
                lm.sample_ref(7, 0.7, &mut r2).expect("reference"),
                "round {round} seed {seed}"
            );
        }
    }
}

#[test]
fn lstm_parity_survives_training() {
    let mut lm = LstmLm::new(6, 5, 7, &mut StdRng::seed_from_u64(9));
    let mut opt = Adam::new(0.02);
    let seq = [0usize, 4, 2, 2, 5];
    for _ in 0..40 {
        lm.zero_grad();
        lm.train_step(&seq, 1.0);
        opt.step(&mut lm);
    }
    for seed in 0..6u64 {
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        assert_eq!(
            lm.sample(6, 1.3, &mut r1).expect("incremental"),
            lm.sample_ref(6, 1.3, &mut r2).expect("reference"),
            "seed {seed}"
        );
    }
}
