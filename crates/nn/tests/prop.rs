//! Property-based tests for the neural substrate.

use fairgen_nn::param::HasParams;
use fairgen_nn::{
    cross_entropy, log_softmax, softmax_rows, unlikelihood, Activation, Adam, Linear, Mat, Mlp,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-3.0f64..3.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_rows_are_distributions(m in arb_mat(4, 6)) {
        let s = softmax_rows(&m);
        for r in 0..4 {
            let sum: f64 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax(m in arb_mat(3, 5)) {
        let ls = log_softmax(&m);
        let s = softmax_rows(&m);
        for r in 0..3 {
            for c in 0..5 {
                prop_assert!((ls.get(r, c) - s.get(r, c).ln()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn softmax_invariant_to_row_shift(m in arb_mat(2, 4), shift in -50.0f64..50.0) {
        let shifted = m.map(|v| v + shift);
        let a = softmax_rows(&m);
        let b = softmax_rows(&shifted);
        for r in 0..2 {
            for c in 0..4 {
                prop_assert!((a.get(r, c) - b.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_rows_sum_zero(
        m in arb_mat(3, 4),
        t0 in 0usize..4, t1 in 0usize..4, t2 in 0usize..4,
    ) {
        let targets = [t0, t1, t2];
        let (loss, grad) = cross_entropy(&m, &targets, None);
        prop_assert!(loss >= 0.0);
        // Each row's gradient sums to zero (softmax simplex constraint).
        for r in 0..3 {
            let sum: f64 = grad.row(r).iter().sum();
            prop_assert!(sum.abs() < 1e-9, "row {} sums to {}", r, sum);
        }
    }

    #[test]
    fn unlikelihood_nonnegative_and_finite(m in arb_mat(3, 4), t in 0usize..4) {
        let targets = [t, (t + 1) % 4, (t + 2) % 4];
        let (loss, grad) = unlikelihood(&m, &targets);
        prop_assert!(loss >= 0.0 && loss.is_finite());
        prop_assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn activations_are_finite_and_monotone_where_expected(x in -10.0f64..10.0, y in -10.0f64..10.0) {
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Gelu] {
            prop_assert!(act.apply(x).is_finite());
            // Monotone activations preserve order (GELU is monotone for x > 0).
            if matches!(act, Activation::Relu | Activation::Tanh | Activation::Sigmoid) && x < y {
                prop_assert!(act.apply(x) <= act.apply(y) + 1e-12);
            }
        }
    }

    #[test]
    fn linear_is_linear(seed in any::<u64>(), a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(3, 2, &mut rng);
        let x1 = Mat::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        let x2 = Mat::from_vec(1, 3, vec![1.5, 0.3, -0.7]);
        let combo = Mat::from_fn(1, 3, |_, c| a * x1.get(0, c) + b * x2.get(0, c));
        // f(ax1 + bx2) - bias = a(f(x1)-bias) + b(f(x2)-bias)
        let f = |x: &Mat| layer.forward_inference(x);
        let bias = f(&Mat::zeros(1, 3));
        let lhs = f(&combo);
        let (y1, y2) = (f(&x1), f(&x2));
        for c in 0..2 {
            let rhs = a * (y1.get(0, c) - bias.get(0, c))
                + b * (y2.get(0, c) - bias.get(0, c))
                + bias.get(0, c);
            prop_assert!((lhs.get(0, c) - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn adam_reduces_convex_loss(start in proptest::collection::vec(-5.0f64..5.0, 4)) {
        struct P { x: fairgen_nn::Param }
        impl HasParams for P {
            fn for_each_param(&mut self, f: &mut dyn FnMut(&mut fairgen_nn::Param)) {
                f(&mut self.x);
            }
        }
        let n = start.len();
        let mut p = P { x: fairgen_nn::Param::new(Mat::from_vec(1, n, start.clone())) };
        let loss = |v: &Mat| -> f64 { 0.5 * v.sq_norm() };
        let initial = loss(&p.x.value);
        prop_assume!(initial > 1e-6);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let g = p.x.value.clone();
            p.x.grad = g;
            opt.step(&mut p);
        }
        prop_assert!(loss(&p.x.value) < initial * 0.05);
    }

    #[test]
    fn mlp_inference_matches_training_forward(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[4, 6, 3], Activation::Gelu, &mut rng);
        let x = Mat::from_fn(3, 4, |r, c| ((r * 4 + c) as f64 * 0.31).sin());
        prop_assert_eq!(mlp.forward(&x), mlp.forward_inference(&x));
    }
}
