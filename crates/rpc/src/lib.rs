//! `fairgen-rpc`: the network front-end for the FairGen serving stack.
//!
//! Everything below [`FairGenServer`](fairgen_serve::FairGenServer) is
//! in-process; this crate puts a socket in front of it — a hand-rolled
//! HTTP/1.1 JSON-RPC server on [`std::net::TcpListener`] (the build
//! environment has no crates.io, so the JSON and HTTP layers are vendored
//! modules, the same way `fairgen-par` vendored its thread pool).
//!
//! | module | what it owns |
//! |---|---|
//! | [`json`] | vendored JSON value tree, strict parser, writer |
//! | [`http`] | HTTP/1.1 request/response framing with typed errors |
//! | [`wire`] | serde-free request/response structs and their JSON shapes |
//! | [`codes`] | the stable `FairGenError` → wire-code table |
//! | [`server`] | [`RpcServer`]: accept loop, per-connection handlers, drain |
//! | [`client`] | [`RpcClient`]: blocking keep-alive JSON-RPC client |
//! | [`metrics`] | the `/metrics` + `/healthz` view over `ServerStats` |
//!
//! The method surface is `generate`, `generate_batch`, and `stats` —
//! POSTed as JSON-RPC 2.0 envelopes to `/rpc` (wire format documented in
//! [`wire`]). Every failure crosses the socket as a structured JSON error
//! with a stable numeric code ([`codes`]) — malformed transport input gets
//! a typed 4xx, application errors keep their `FairGenError` identity,
//! and a draining or shut-down server answers exactly
//! [`codes::SERVER_CLOSED`], the same typed rejection the in-process
//! `submit` path returns. Shutdown mirrors the in-process contract: stop
//! accepting, drain in-flight connections, then close the shard queues and
//! spill dirty models.
//!
//! The `bench_serving` bin (in `fairgen-bench`) drives this socket with N
//! concurrent clients across cold/warm/dedup request mixes and writes the
//! latency/throughput distribution into `BENCH_serving.json` — the
//! serving-path artifact later scaling PRs move.

pub mod client;
pub mod codes;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{ClientError, ClientResult, RpcClient, RpcErrorInfo};
pub use http::{HttpError, HttpLimits, HttpRequest, HttpResponse};
pub use json::{Json, JsonError, JsonErrorKind};
pub use metrics::{health_sample, metric_families, METRICS_CONTENT_TYPE};
pub use server::{
    handle_rpc_body, respond, respond_http, HttpReply, ObsState, RpcConfig, RpcServer,
};
pub use wire::{
    GenerateParams, GenerateResult, RpcRequest, UpdateParams, UpdateResult, WireError,
    WireLimits,
};
