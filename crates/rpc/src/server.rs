//! The network front-end: an HTTP/1.1 JSON-RPC server over
//! [`FairGenServer`].
//!
//! # Architecture
//!
//! ```text
//!  TCP clients ──▶ accept loop ──▶ one handler thread per connection
//!                                   │  read_request (timeout-bounded)
//!                                   │  parse JSON → envelope → method
//!                                   ▼
//!                            FairGenServer::submit_shared ──▶ shards
//! ```
//!
//! * **Thread-per-connection** with per-socket read/write timeouts; the
//!   handler loop serves any number of keep-alive requests per connection.
//! * **Every failure is a structured JSON error** — HTTP-level rejects
//!   (bad framing, oversized bodies) answer 4xx with a JSON-RPC error
//!   body, application errors cross the wire as their stable
//!   [`codes`] entry. Never a bare 500.
//! * **Graceful drain on shutdown**, mirroring the in-process
//!   `FairGenServer::shutdown` contract: stop accepting → half-close every
//!   connection's read side (in-flight responses still go out) → wait for
//!   handlers to finish → shut the inner server down (close queues, drain
//!   backlog, `spill_all` dirty models). Requests that race the drain get
//!   the typed [`FairGenError::ServerClosed`] wire code.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fairgen_core::error::{FairGenError, Result};
use fairgen_obs::{render, HealthMonitor, HealthPolicy, HealthVerdict};
use fairgen_serve::{Clock, FairGenServer, Lane, SubmitOptions, SystemClock, TenantId};

use crate::codes;
use crate::http::{read_request, write_response_ext, HttpLimits};
use crate::json::{parse, Json};
use crate::metrics::{health_sample, metric_families, METRICS_CONTENT_TYPE};
use crate::wire::{
    decode_envelope, decode_generate_params, decode_tenant, decode_update_params, error_object,
    fairgen_error_object, generate_result_to_json, response_envelope, stats_to_json,
    update_result_to_json, WireLimits,
};

/// Network front-end policy.
#[derive(Clone)]
pub struct RpcConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub bind_addr: String,
    /// Per-connection socket read timeout: bounds both idle keep-alive
    /// lifetime and a stalled upload.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Maximum concurrently-served connections. Each connection costs a
    /// handler thread plus up to [`HttpLimits::max_body_bytes`] of buffer,
    /// so the accept loop answers connections beyond this cap with a typed
    /// 503 and closes them instead of spawning unboundedly.
    pub max_connections: usize,
    /// HTTP parser resource limits.
    pub limits: HttpLimits,
    /// Wire-decode resource bounds (max node/edge counts per request).
    pub wire: WireLimits,
    /// The `Retry-After` advertised on 503s (draining, connection cap,
    /// unhealthy) and on 429s when no token-bucket refill rate is
    /// available to derive a tighter hint from.
    pub retry_after: Duration,
    /// Sustained-window thresholds behind `GET /healthz`.
    pub health: HealthPolicy,
    /// The time source driving health-window transitions. Injectable so
    /// `/healthz` flips are deterministic under a `ManualClock`; share the
    /// admission clock to keep the whole stack on one timeline.
    pub clock: Arc<dyn Clock>,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            bind_addr: "127.0.0.1:0".into(),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_connections: 256,
            limits: HttpLimits::default(),
            wire: WireLimits::default(),
            retry_after: Duration::from_secs(1),
            health: HealthPolicy::default(),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

impl std::fmt::Debug for RpcConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcConfig")
            .field("bind_addr", &self.bind_addr)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("max_connections", &self.max_connections)
            .field("limits", &self.limits)
            .field("wire", &self.wire)
            .field("retry_after", &self.retry_after)
            .field("health", &self.health)
            .field("clock", &self.clock.name())
            .finish()
    }
}

/// Observability state shared by every connection handler: the health
/// monitor (windowed, so it must be one instance per server) and the
/// clock + retry policy the endpoints consult.
pub struct ObsState {
    monitor: Mutex<HealthMonitor>,
    clock: Arc<dyn Clock>,
    retry_after_secs: u64,
}

impl ObsState {
    /// Fresh observability state for one server, per `cfg`'s health
    /// policy, clock, and retry default.
    pub fn new(cfg: &RpcConfig) -> Self {
        ObsState {
            monitor: Mutex::new(HealthMonitor::new(cfg.health)),
            clock: Arc::clone(&cfg.clock),
            retry_after_secs: cfg.retry_after.as_secs().max(1),
        }
    }

    fn evaluate(&self, server: &FairGenServer) -> HealthVerdict {
        let sample = health_sample(&server.stats());
        self.monitor.lock().expect("health monitor").evaluate(self.clock.now_nanos(), sample)
    }
}

impl std::fmt::Debug for ObsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsState").field("clock", &self.clock.name()).finish()
    }
}

/// Connection bookkeeping shared between the accept loop, the handlers,
/// and shutdown.
struct Shared {
    closing: AtomicBool,
    /// Read-half handles of live connections, for shutdown's half-close.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Live handler count + condvar — a wait group for the drain.
    active: Mutex<usize>,
    drained: Condvar,
}

impl Shared {
    fn enter(&self, id: u64, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().expect("conns").insert(id, clone);
        }
        *self.active.lock().expect("active") += 1;
    }

    fn exit(&self, id: u64) {
        self.conns.lock().expect("conns").remove(&id);
        let mut active = self.active.lock().expect("active");
        *active -= 1;
        if *active == 0 {
            self.drained.notify_all();
        }
    }
}

/// The HTTP/1.1 JSON-RPC front-end over a [`FairGenServer`]. Binds on
/// construction, serves until [`shutdown`](RpcServer::shutdown) (also run
/// by `Drop`).
///
/// ```no_run
/// use fairgen_baselines::ErGenerator;
/// use fairgen_rpc::{RpcConfig, RpcServer};
/// use fairgen_serve::{FairGenServer, ServerConfig};
/// # fn demo() -> fairgen_core::error::Result<()> {
/// let inner = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())?;
/// let rpc = RpcServer::serve(inner, RpcConfig::default())?;
/// println!("listening on {}", rpc.local_addr());
/// # Ok(())
/// # }
/// ```
pub struct RpcServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    /// `None` after shutdown.
    inner: Option<Arc<FairGenServer>>,
    accept: Option<JoinHandle<()>>,
}

impl RpcServer {
    /// Binds `cfg.bind_addr` and starts serving `server` over it.
    ///
    /// # Errors
    ///
    /// [`FairGenError::Io`] when the address cannot be bound;
    /// [`FairGenError::Internal`] when the accept thread cannot spawn.
    pub fn serve(server: FairGenServer, cfg: RpcConfig) -> Result<Self> {
        let listener = TcpListener::bind(&cfg.bind_addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept + short parks lets shutdown stop the loop
        // without the self-connect handshake a blocking accept would need.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            closing: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            active: Mutex::new(0),
            drained: Condvar::new(),
        });
        let inner = Arc::new(server);
        let obs = Arc::new(ObsState::new(&cfg));
        let accept = {
            let shared = Arc::clone(&shared);
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("fairgen-rpc-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &inner, &obs, &cfg))
                .map_err(|e| FairGenError::Internal {
                    detail: format!("failed to spawn the RPC accept thread: {e}"),
                })?
        };
        Ok(RpcServer { local_addr, shared, inner: Some(inner), accept: Some(accept) })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A stats snapshot of the inner serving stack (empty after shutdown).
    pub fn stats(&self) -> fairgen_serve::ServerStats {
        match &self.inner {
            Some(inner) => inner.stats(),
            None => fairgen_serve::ServerStats::default(),
        }
    }

    /// Graceful shutdown: stop accepting, half-close every connection's
    /// read side (responses in flight still complete), wait for handlers
    /// to drain, then shut the inner [`FairGenServer`] down — which closes
    /// its queues, serves its backlog, and spills dirty models. Idempotent;
    /// also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Half-close: blocked reads see EOF immediately (no read-timeout
        // wait), while a handler mid-request can still write its response.
        for stream in self.shared.conns.lock().expect("conns").values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let mut active = self.shared.active.lock().expect("active");
        while *active > 0 {
            active = self.shared.drained.wait(active).expect("active");
        }
        drop(active);
        if let Some(inner) = self.inner.take() {
            // All handler clones are gone once the drain completes, so this
            // unwrap succeeds and runs the in-process graceful shutdown
            // (close → drain → spill_all). Fall back to Drop if not.
            match Arc::try_unwrap(inner) {
                Ok(mut server) => server.shutdown(),
                Err(arc) => drop(arc),
            }
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcServer")
            .field("local_addr", &self.local_addr)
            .field("closing", &self.shared.closing.load(Ordering::SeqCst))
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    inner: &Arc<FairGenServer>,
    obs: &Arc<ObsState>,
    cfg: &RpcConfig,
) {
    loop {
        if shared.closing.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if *shared.active.lock().expect("active") >= cfg.max_connections {
                    // At capacity: answer a typed 503 and close instead of
                    // spawning yet another handler thread. `Retry-After`
                    // tells well-behaved clients how long to stay away.
                    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
                    let body = response_envelope(
                        &Json::Null,
                        Err(error_object(
                            codes::HTTP_ERROR,
                            "connection limit reached; retry later",
                            "Http",
                        )),
                    );
                    let _ = write_json_ext(
                        &mut stream,
                        503,
                        &body,
                        true,
                        Some(obs.retry_after_secs),
                    );
                    continue;
                }
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                // Register under the accept thread, not the handler: a
                // shutdown racing the spawn must still see the connection.
                shared.enter(id, &stream);
                let handler_shared = Arc::clone(shared);
                let inner = Arc::clone(inner);
                let obs = Arc::clone(obs);
                let cfg = cfg.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("fairgen-rpc-conn-{id}"))
                    .spawn(move || {
                        handle_connection(stream, &inner, &obs, &handler_shared, &cfg);
                        handler_shared.exit(id);
                    });
                if spawned.is_err() {
                    shared.exit(id);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serves one connection: any number of keep-alive requests, each answered
/// with a JSON body; closes on transport errors, `Connection: close`, or
/// server drain.
fn handle_connection(
    stream: TcpStream,
    server: &FairGenServer,
    obs: &ObsState,
    shared: &Shared,
    cfg: &RpcConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, &cfg.limits) {
            Ok(request) => {
                let closing = shared.closing.load(Ordering::SeqCst);
                let reply = respond_http(
                    server,
                    obs,
                    closing,
                    &request.method,
                    &request.target,
                    &request.body,
                    request.header("x-fairgen-tenant"),
                    &cfg.wire,
                );
                let close = closing || !request.keep_alive();
                if write_reply(&mut writer, &reply, close).is_err() || close {
                    return;
                }
            }
            Err(e) => {
                // Framing is unknown after a parse error: answer when the
                // failure has an HTTP status, then close either way.
                if let Some((status, _reason)) = e.status() {
                    let body = response_envelope(
                        &Json::Null,
                        Err(error_object(codes::HTTP_ERROR, &e.describe(), "Http")),
                    );
                    let _ = write_json(&mut writer, status, &body, true);
                }
                return;
            }
        }
    }
}

fn write_json(
    writer: &mut impl Write,
    status: u16,
    body: &Json,
    close: bool,
) -> std::io::Result<()> {
    write_json_ext(writer, status, body, close, None)
}

fn write_json_ext(
    writer: &mut impl Write,
    status: u16,
    body: &Json,
    close: bool,
    retry_after_secs: Option<u64>,
) -> std::io::Result<()> {
    let extra: Vec<(&str, String)> = retry_after_secs
        .map(|secs| vec![("Retry-After", secs.to_string())])
        .unwrap_or_default();
    write_response_ext(
        writer,
        status,
        reason_for(status),
        "application/json",
        body.encode().as_bytes(),
        close,
        &extra,
    )
}

fn write_reply(writer: &mut impl Write, reply: &HttpReply, close: bool) -> std::io::Result<()> {
    let extra: Vec<(&str, String)> = reply
        .retry_after_secs
        .map(|secs| vec![("Retry-After", secs.to_string())])
        .unwrap_or_default();
    write_response_ext(
        writer,
        reply.status,
        reason_for(reply.status),
        reply.content_type,
        &reply.body,
        close,
        &extra,
    )
}

/// One fully-routed HTTP answer: status, content type, body bytes, and the
/// optional `Retry-After` hint the transport writes as a header.
#[derive(Clone, Debug)]
pub struct HttpReply {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// `Some(secs)` on backpressure statuses (429/503): how long the
    /// client should stay away.
    pub retry_after_secs: Option<u64>,
}

impl HttpReply {
    fn json(status: u16, body: &Json, retry_after_secs: Option<u64>) -> Self {
        HttpReply {
            status,
            content_type: "application/json",
            body: body.encode().into_bytes(),
            retry_after_secs,
        }
    }
}

/// The full HTTP routing surface: plain-GET observability endpoints
/// (`/metrics`, `/healthz`) next to the JSON-RPC POST path ([`respond`]).
/// Public so tests can drive the exact routing logic without a socket.
///
/// `/metrics` keeps answering while the server drains — a scrape during
/// shutdown is precisely when operators want numbers — and `/healthz`
/// reports draining as unhealthy so load balancers rotate the instance
/// out before the listener disappears.
#[allow(clippy::too_many_arguments)]
pub fn respond_http(
    server: &FairGenServer,
    obs: &ObsState,
    closing: bool,
    method: &str,
    target: &str,
    body: &[u8],
    tenant_header: Option<&str>,
    wire: &WireLimits,
) -> HttpReply {
    let path = target.split('?').next().unwrap_or(target);
    if method == "GET" && path == "/metrics" {
        let text = render(&metric_families(&server.stats()));
        return HttpReply {
            status: 200,
            content_type: METRICS_CONTENT_TYPE,
            body: text.into_bytes(),
            retry_after_secs: None,
        };
    }
    if method == "GET" && path == "/healthz" {
        return healthz_reply(server, obs, closing);
    }
    let (status, envelope) =
        respond(server, closing, method, target, body, tenant_header, wire);
    let retry = match status {
        // Rate rejections can promise a refill-derived wait; queue-full
        // and closure fall back to the configured default. The tightest
        // honest hint for a token bucket is the time to accrue one token.
        429 => server
            .rate_config()
            .and_then(|cfg| cfg.secs_to_accrue(1))
            .or(Some(obs.retry_after_secs)),
        503 => Some(obs.retry_after_secs),
        _ => None,
    };
    HttpReply::json(status, &envelope, retry)
}

/// `GET /healthz`: 200 with `{"status":"ok"}` while healthy, 503 with a
/// JSON reason body once a threshold breach has sustained, 503
/// `"draining"` during shutdown.
fn healthz_reply(server: &FairGenServer, obs: &ObsState, closing: bool) -> HttpReply {
    if closing {
        let body = Json::Obj(vec![
            ("status".into(), Json::Str("draining".into())),
            ("reason".into(), Json::Str("server_closing".into())),
        ]);
        return HttpReply::json(503, &body, Some(obs.retry_after_secs));
    }
    let verdict = obs.evaluate(server);
    let (depth_streak, shed_streak) = verdict.streaks;
    let detail = vec![
        ("queue_depth_streak".to_string(), Json::U64(u64::from(depth_streak))),
        ("shed_rate_streak".to_string(), Json::U64(u64::from(shed_streak))),
        ("window_shed_rate".to_string(), Json::F64(verdict.window_shed_rate)),
    ];
    if verdict.healthy {
        let mut fields = vec![("status".to_string(), Json::Str("ok".into()))];
        fields.extend(detail);
        HttpReply::json(200, &Json::Obj(fields), None)
    } else {
        let reason = verdict.reason.map(|r| r.as_str()).unwrap_or("unhealthy");
        let mut fields = vec![
            ("status".to_string(), Json::Str("unhealthy".into())),
            ("reason".to_string(), Json::Str(reason.into())),
        ];
        fields.extend(detail);
        HttpReply::json(503, &Json::Obj(fields), Some(obs.retry_after_secs))
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    }
}

/// The transport-independent request path: HTTP method/target routing plus
/// [`handle_rpc_body`]. Public so tests can drive the exact server logic
/// without a socket.
pub fn respond(
    server: &FairGenServer,
    closing: bool,
    method: &str,
    target: &str,
    body: &[u8],
    tenant_header: Option<&str>,
    wire: &WireLimits,
) -> (u16, Json) {
    if method != "POST" {
        let err = error_object(
            codes::HTTP_ERROR,
            &format!("method {method} not allowed; POST a JSON-RPC envelope"),
            "Http",
        );
        return (405, response_envelope(&Json::Null, Err(err)));
    }
    let path = target.split('?').next().unwrap_or(target);
    if path != "/" && path != "/rpc" {
        let err = error_object(
            codes::HTTP_ERROR,
            &format!("unknown target {target}; the RPC endpoint is /rpc"),
            "Http",
        );
        return (404, response_envelope(&Json::Null, Err(err)));
    }
    handle_rpc_body(server, closing, body, tenant_header, wire)
}

/// Parses and dispatches one JSON-RPC request body, returning the HTTP
/// status and the response envelope. This is the whole method surface:
/// `generate`, `generate_batch`, `update_graph`, and `stats`.
///
/// `tenant_header` is the raw `X-FairGen-Tenant` value, if the transport
/// saw one; a `tenant` param inside the request body takes precedence, and
/// with neither the request bills the anonymous default tenant.
///
/// With `closing` set (the RPC layer is draining), every method is
/// rejected with the same typed wire code as a post-shutdown in-process
/// submit: [`codes::SERVER_CLOSED`].
pub fn handle_rpc_body(
    server: &FairGenServer,
    closing: bool,
    body: &[u8],
    tenant_header: Option<&str>,
    wire: &WireLimits,
) -> (u16, Json) {
    let value = match parse(body) {
        Ok(v) => v,
        Err(e) => {
            let err = error_object(codes::PARSE_ERROR, &e.to_string(), "Json");
            return (400, response_envelope(&Json::Null, Err(err)));
        }
    };
    let request = match decode_envelope(&value) {
        Ok(r) => r,
        Err(e) => {
            let err = error_object(codes::INVALID_REQUEST, &e.to_string(), "Envelope");
            return (400, response_envelope(&Json::Null, Err(err)));
        }
    };
    if closing {
        let e = FairGenError::ServerClosed;
        return (503, response_envelope(&request.id, Err(fairgen_error_object(&e))));
    }
    match request.method.as_str() {
        "generate" | "generate_batch" => {
            let batch = request.method == "generate_batch";
            let params = match decode_generate_params(&request.params, batch, wire) {
                Ok(p) => p,
                Err(e) => {
                    let err = error_object(codes::INVALID_PARAMS, &e.to_string(), "Params");
                    return (400, response_envelope(&request.id, Err(err)));
                }
            };
            let tenant = match decode_tenant(&request.params, tenant_header, wire) {
                Ok(label) => label.map(TenantId::new).unwrap_or_default(),
                Err(e) => {
                    let err = error_object(codes::INVALID_PARAMS, &e.to_string(), "Params");
                    return (400, response_envelope(&request.id, Err(err)));
                }
            };
            let opts = SubmitOptions {
                tenant,
                // The method IS the lane: interactive single draws ahead of
                // bulk batches, matching the in-process inference.
                lane: Some(if batch { Lane::Bulk } else { Lane::Interactive }),
                deadline: None,
            };
            let submitted = server.submit_with(
                Arc::new(params.graph),
                Arc::new(params.task),
                params.fit_seed,
                params.sample_seeds,
                opts,
            );
            let served = match submitted {
                Ok(pending) => pending.wait(),
                Err(e) => Err(e),
            };
            match served {
                Ok(response) => (
                    200,
                    response_envelope(&request.id, Ok(generate_result_to_json(&response))),
                ),
                Err(e) => {
                    // Application errors stay HTTP 200 per JSON-RPC-over-
                    // HTTP convention — except closure (503, so load
                    // balancers drain too) and admission rejection (429, so
                    // generic clients and proxies back off).
                    let status = match e {
                        FairGenError::ServerClosed => 503,
                        FairGenError::Overloaded { .. } => 429,
                        _ => 200,
                    };
                    (status, response_envelope(&request.id, Err(fairgen_error_object(&e))))
                }
            }
        }
        "update_graph" => {
            let params = match decode_update_params(&request.params, wire) {
                Ok(p) => p,
                Err(e) => {
                    let err = error_object(codes::INVALID_PARAMS, &e.to_string(), "Params");
                    return (400, response_envelope(&request.id, Err(err)));
                }
            };
            let tenant = match decode_tenant(&request.params, tenant_header, wire) {
                Ok(label) => label.map(TenantId::new).unwrap_or_default(),
                Err(e) => {
                    let err = error_object(codes::INVALID_PARAMS, &e.to_string(), "Params");
                    return (400, response_envelope(&request.id, Err(err)));
                }
            };
            // Updates default to the bulk lane in `submit_update`:
            // structural maintenance never preempts interactive draws.
            let opts = SubmitOptions { tenant, lane: None, deadline: None };
            let submitted = server.submit_update(
                Arc::new(params.graph),
                Arc::new(params.task),
                params.fit_seed,
                params.delta,
                opts,
            );
            let outcome = match submitted {
                Ok(pending) => pending.wait(),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(outcome) => {
                    (200, response_envelope(&request.id, Ok(update_result_to_json(&outcome))))
                }
                Err(e) => {
                    let status = match e {
                        FairGenError::ServerClosed => 503,
                        FairGenError::Overloaded { .. } => 429,
                        _ => 200,
                    };
                    (status, response_envelope(&request.id, Err(fairgen_error_object(&e))))
                }
            }
        }
        "stats" => (200, response_envelope(&request.id, Ok(stats_to_json(&server.stats())))),
        other => {
            let err = error_object(
                codes::METHOD_NOT_FOUND,
                &format!(
                    "unknown method {other:?}; this server speaks generate, \
                          generate_batch, update_graph, and stats"
                ),
                "Method",
            );
            (404, response_envelope(&request.id, Err(err)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_baselines::ErGenerator;
    use fairgen_serve::ServerConfig;

    fn inner() -> FairGenServer {
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("server")
    }

    fn wire() -> WireLimits {
        WireLimits::default()
    }

    #[test]
    fn non_post_and_bad_target_are_typed_4xx() {
        let server = inner();
        let (status, body) = respond(&server, false, "GET", "/rpc", b"", None, &wire());
        assert_eq!(status, 405);
        assert_eq!(
            body.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64),
            Some(codes::HTTP_ERROR)
        );
        let (status, _) = respond(&server, false, "POST", "/metrics", b"{}", None, &wire());
        assert_eq!(status, 404);
    }

    #[test]
    fn parse_envelope_method_errors_are_typed() {
        let server = inner();
        for (body, code, status) in [
            (&b"not json"[..], codes::PARSE_ERROR, 400),
            (br#"{"id":1}"#, codes::INVALID_REQUEST, 400),
            (br#"{"method":"warp","id":1}"#, codes::METHOD_NOT_FOUND, 404),
            (br#"{"method":"generate","id":1,"params":{}}"#, codes::INVALID_PARAMS, 400),
        ] {
            let (got_status, envelope) = handle_rpc_body(&server, false, body, None, &wire());
            assert_eq!(got_status, status, "{}", String::from_utf8_lossy(body));
            let got = envelope.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64);
            assert_eq!(got, Some(code), "{}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn oversized_scalars_are_invalid_params_not_allocations() {
        // `n` and `protected.universe` drive O(value) allocations when the
        // graph/task are constructed; a hostile few-byte request must be
        // rejected in decode with INVALID_PARAMS, never reach an allocator.
        let server = inner();
        for body in [
            &br#"{"method":"generate","id":3,"params":{
                "graph": {"n": 18446744073709551615, "edges": []},
                "task": {"labeled": [], "num_classes": 0, "protected": null},
                "fit_seed": 0, "sample_seed": 0}}"#[..],
            br#"{"method":"generate","id":4,"params":{
                "graph": {"n": 4, "edges": [[0,1]]},
                "task": {"labeled": [], "num_classes": 0,
                         "protected": {"universe": 18446744073709551615, "members": []}},
                "fit_seed": 0, "sample_seed": 0}}"#,
        ] {
            let (status, envelope) = handle_rpc_body(&server, false, body, None, &wire());
            assert_eq!(status, 400, "{}", String::from_utf8_lossy(body));
            assert_eq!(
                envelope.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64),
                Some(codes::INVALID_PARAMS),
                "{}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn closing_and_closed_paths_share_the_server_closed_code() {
        // The drain flag and an actually-shut-down inner server must be
        // indistinguishable on the wire: one typed code, one status.
        let body = br#"{"method":"stats","id":7}"#;
        let server = inner();
        let (status, envelope) = handle_rpc_body(&server, true, body, None, &wire());
        assert_eq!(status, 503);
        assert_eq!(
            envelope.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64),
            Some(codes::SERVER_CLOSED),
        );
        assert_eq!(envelope.get("id").and_then(Json::as_u64), Some(7));

        let mut shut = inner();
        shut.shutdown();
        let gen_body = br#"{"method":"generate","id":8,"params":{
            "graph": {"n": 4, "edges": [[0,1],[1,2],[2,3]]},
            "task": {"labeled": [], "num_classes": 0, "protected": null},
            "fit_seed": 1, "sample_seed": 2}}"#;
        let (status, envelope) = handle_rpc_body(&shut, false, gen_body, None, &wire());
        assert_eq!(status, 503);
        assert_eq!(
            envelope.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64),
            Some(codes::SERVER_CLOSED),
            "post-shutdown submit must surface the same wire code"
        );
    }

    #[test]
    fn generate_round_trips_against_the_inner_server() {
        let server = inner();
        let body = br#"{"jsonrpc":"2.0","method":"generate","id":1,"params":{
            "graph": {"n": 6, "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]},
            "task": {"labeled": [], "num_classes": 0, "protected": null},
            "fit_seed": 42, "sample_seed": 7}}"#;
        let (status, envelope) = handle_rpc_body(&server, false, body, None, &wire());
        assert_eq!(status, 200, "{envelope:?}");
        let result = envelope.get("result").expect("result");
        let decoded = crate::wire::generate_result_from_json(result, &wire()).expect("decode");
        assert_eq!(decoded.graphs.len(), 1);
        // Oracle: the same request straight through the in-process API.
        let g = fairgen_graph::Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let direct = server
            .handle(&g, &fairgen_baselines::TaskSpec::unlabeled(), 42, vec![7])
            .expect("direct");
        assert_eq!(decoded.graphs[0], direct.graphs[0]);
        assert_eq!(decoded.fingerprint, direct.fingerprint.to_hex());
    }

    #[test]
    fn app_errors_cross_as_stable_codes() {
        let server = inner();
        // Label on a node outside the graph → NodeOutOfRange, code 1003.
        let body = br#"{"method":"generate","id":2,"params":{
            "graph": {"n": 4, "edges": [[0,1],[1,2],[2,3]]},
            "task": {"labeled": [[99, 0]], "num_classes": 1, "protected": null},
            "fit_seed": 0, "sample_seed": 0}}"#;
        let (status, envelope) = handle_rpc_body(&server, false, body, None, &wire());
        assert_eq!(status, 200);
        let error = envelope.get("error").expect("error object");
        assert_eq!(error.get("code").and_then(Json::as_i64), Some(codes::NODE_OUT_OF_RANGE));
        let kind = error.get("data").and_then(|d| d.get("kind")).and_then(Json::as_str);
        assert_eq!(kind, Some("NodeOutOfRange"));
    }

    #[test]
    fn stats_method_reports_totals() {
        let server = inner();
        let g = fairgen_graph::Graph::from_edges(4, &[(0, 1), (1, 2)]);
        server
            .handle(&g, &fairgen_baselines::TaskSpec::unlabeled(), 3, vec![1])
            .expect("serve");
        let (status, envelope) =
            handle_rpc_body(&server, false, br#"{"method":"stats"}"#, None, &wire());
        assert_eq!(status, 200);
        let totals = envelope.get("result").and_then(|r| r.get("totals")).expect("totals");
        assert_eq!(totals.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(totals.get("fits").and_then(Json::as_u64), Some(1));
        assert!(totals.get("queue_depth").and_then(Json::as_u64).is_some());
        assert!(totals.get("drains").and_then(Json::as_u64).is_some());
    }
}
