//! A blocking HTTP/1.1 JSON-RPC client for the `fairgen-rpc` wire format.
//!
//! One [`RpcClient`] holds one keep-alive connection and issues requests
//! sequentially (JSON-RPC ids are matched per call). The load harness and
//! the loopback tests run many clients, each on its own thread.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use fairgen_baselines::TaskSpec;
use fairgen_graph::{Graph, GraphDelta};

use crate::codes;
use crate::http::{read_response, HttpError, HttpLimits, HttpResponse};
use crate::json::{obj, parse, Json, JsonError};
use crate::wire::{
    encode_generate_params, encode_update_params, generate_result_from_json,
    update_result_from_json, GenerateResult, UpdateResult, WireError, WireLimits,
};

/// A structured JSON-RPC error reported by the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcErrorInfo {
    /// The stable wire code (see [`codes`]).
    pub code: i64,
    /// Human-readable message.
    pub message: String,
    /// The error-kind discriminator from `data.kind`, when present.
    pub kind: Option<String>,
    /// The HTTP status the error arrived under.
    pub http_status: u16,
    /// Seconds the server asked this client to wait before retrying
    /// (the `Retry-After` header 429/503 responses carry), when present.
    pub retry_after: Option<u64>,
}

impl RpcErrorInfo {
    /// Whether the server told this client to come back later rather than
    /// reporting a fault in the request: [`codes::OVERLOADED`] (admission
    /// rejected the request — back off and retry here) and
    /// [`codes::SERVER_CLOSED`] (this instance is draining — retry against
    /// another). Every other code means retrying the same request verbatim
    /// would fail the same way.
    pub fn retryable(&self) -> bool {
        matches!(self.code, codes::OVERLOADED | codes::SERVER_CLOSED)
    }

    /// Whether this is specifically the admission-control rejection
    /// ([`codes::OVERLOADED`], HTTP 429).
    pub fn is_overloaded(&self) -> bool {
        self.code == codes::OVERLOADED
    }
}

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The response was not parseable HTTP.
    Http(HttpError),
    /// The response body was not parseable JSON.
    Json(JsonError),
    /// The response JSON did not match the wire schema.
    Wire(WireError),
    /// The server answered with a structured JSON-RPC error.
    Rpc(RpcErrorInfo),
    /// The response id did not echo the request id.
    IdMismatch {
        /// The id the client sent.
        sent: u64,
        /// What came back, rendered.
        got: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o failure: {e}"),
            ClientError::Http(e) => write!(f, "bad http response: {}", e.describe()),
            ClientError::Json(e) => write!(f, "bad json in response: {e}"),
            ClientError::Wire(e) => write!(f, "response schema mismatch: {e}"),
            ClientError::Rpc(e) => {
                write!(f, "server error {} (http {}): {}", e.code, e.http_status, e.message)
            }
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// One keep-alive JSON-RPC connection.
///
/// Keep-alive connections go stale: a server may close an idle connection
/// (drain, restart, idle timeout) between two calls, and the client only
/// finds out when the next request hits a dead socket. The client treats
/// that one failure shape — connection lost before **any** response bytes
/// arrived — as retriable: it reconnects to the address it resolved at
/// [`connect`](RpcClient::connect) time and resends the request exactly
/// once. A connection that dies *mid-response* is not retried (the server
/// saw the request; blind resend could double-apply an update).
pub struct RpcClient {
    reader: BufReader<TcpStream>,
    /// Resolved at connect time so a stale keep-alive connection can be
    /// re-established without re-running name resolution.
    addr: SocketAddr,
    timeout: Duration,
    limits: HttpLimits,
    wire: WireLimits,
    next_id: u64,
    /// Sent as `X-FairGen-Tenant` on every request when set.
    tenant: Option<String>,
}

impl RpcClient {
    /// Connects with default timeouts (10 s).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        Self::connect_with(addr, Duration::from_secs(10))
    }

    /// Connects with a specific read/write timeout.
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> ClientResult<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address resolved empty"))?;
        Ok(RpcClient {
            reader: Self::open(addr, timeout)?,
            addr,
            timeout,
            limits: HttpLimits::default(),
            wire: WireLimits::default(),
            next_id: 1,
            tenant: None,
        })
    }

    fn open(addr: SocketAddr, timeout: Duration) -> ClientResult<BufReader<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    fn reconnect(&mut self) -> ClientResult<()> {
        self.reader = Self::open(self.addr, self.timeout)?;
        Ok(())
    }

    /// Write-side errors that mean "the peer already closed this
    /// connection", as opposed to a fault in the request itself.
    fn stale_pipe(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
        )
    }

    /// One write + read over the current connection. The `bool` in the
    /// error says whether the failure is a stale keep-alive connection
    /// (safe to reconnect and resend) or a real fault (it is not).
    fn exchange_once(&mut self, request: &[u8]) -> Result<HttpResponse, (bool, ClientError)> {
        let write = (|| {
            let mut writer = self.reader.get_ref().try_clone()?;
            writer.write_all(request)?;
            writer.flush()
        })();
        if let Err(e) = write {
            let stale = Self::stale_pipe(&e);
            return Err((stale, ClientError::Io(e)));
        }
        match read_response(&mut self.reader, &self.limits) {
            Ok(response) => Ok(response),
            // Clean close before any response bytes: the server dropped
            // the idle connection between requests. Retriable.
            Err(HttpError::Eof) => Err((true, ClientError::Http(HttpError::Eof))),
            // Anything else — including `Io(UnexpectedEof)`, a connection
            // that died mid-response — is not: the request may have been
            // processed.
            Err(HttpError::Io(io)) => Err((false, ClientError::Io(io))),
            Err(other) => Err((false, ClientError::Http(other))),
        }
    }

    /// Sends one request, reconnecting and resending exactly once when the
    /// kept-alive connection turns out to be stale.
    fn exchange(&mut self, request: &[u8]) -> ClientResult<HttpResponse> {
        match self.exchange_once(request) {
            Ok(response) => Ok(response),
            Err((true, _)) => {
                self.reconnect()?;
                self.exchange_once(request).map_err(|(_, e)| e)
            }
            Err((false, e)) => Err(e),
        }
    }

    /// Issues a plain `GET` against the server (e.g. `/metrics`,
    /// `/healthz`) over the same keep-alive connection the RPC calls use,
    /// with the same stale-connection retry. Returns the raw response —
    /// `/healthz` deliberately answers 503 with a JSON body, so a non-2xx
    /// status is data here, not an error.
    pub fn http_get(&mut self, path: &str) -> ClientResult<HttpResponse> {
        let request = format!("GET {path} HTTP/1.1\r\nHost: fairgen\r\n\r\n");
        self.exchange(request.as_bytes())
    }

    /// Bills every subsequent call to `tenant` (sent as the
    /// `X-FairGen-Tenant` header). Pass `None` to go back to the anonymous
    /// default tenant.
    pub fn set_tenant(&mut self, tenant: Option<&str>) {
        self.tenant = tenant.map(str::to_string);
    }

    /// The tenant label calls are currently billed to, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Issues one JSON-RPC call and returns the `result` value, or
    /// [`ClientError::Rpc`] when the server answered with an error object.
    pub fn call(&mut self, method: &str, params: Json) -> ClientResult<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = obj(vec![
            ("jsonrpc", Json::Str("2.0".into())),
            ("id", Json::U64(id)),
            ("method", Json::Str(method.into())),
            ("params", params),
        ]);
        let body = envelope.encode();
        let tenant_header = match &self.tenant {
            Some(tenant) => format!("X-FairGen-Tenant: {tenant}\r\n"),
            None => String::new(),
        };
        let request = format!(
            "POST /rpc HTTP/1.1\r\nHost: fairgen\r\nContent-Type: application/json\r\n\
             {tenant_header}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let response = self.exchange(request.as_bytes())?;
        let value = parse(&response.body).map_err(ClientError::Json)?;
        let got_id = value.get("id").cloned().unwrap_or(Json::Null);
        let id_matches = got_id.as_u64() == Some(id);
        if let Some(error) = value.get("error") {
            let info = RpcErrorInfo {
                code: error.get("code").and_then(Json::as_i64).unwrap_or(0),
                message: error.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
                kind: error
                    .get("data")
                    .and_then(|d| d.get("kind"))
                    .and_then(Json::as_str)
                    .map(str::to_string),
                http_status: response.status,
                retry_after: response.header("retry-after").and_then(|v| v.trim().parse().ok()),
            };
            // A pre-dispatch failure (unparseable body, bad envelope, HTTP
            // reject) legitimately carries a null id — the server never
            // learned ours. Anything else echoing the wrong id belongs to
            // some other call: the connection is desynced, and attributing
            // the error to this request would misreport which call failed.
            let pre_dispatch = matches!(
                info.code,
                codes::PARSE_ERROR | codes::INVALID_REQUEST | codes::HTTP_ERROR
            );
            if !(id_matches || (got_id.is_null() && pre_dispatch)) {
                return Err(ClientError::IdMismatch { sent: id, got: got_id.encode() });
            }
            return Err(ClientError::Rpc(info));
        }
        if !id_matches {
            return Err(ClientError::IdMismatch { sent: id, got: got_id.encode() });
        }
        value.get("result").cloned().ok_or_else(|| {
            ClientError::Wire(WireError {
                field: "result".into(),
                detail: "missing from a non-error response".into(),
            })
        })
    }

    /// One synthetic draw: `generate(graph, task, fit_seed, sample_seed)`.
    pub fn generate(
        &mut self,
        graph: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seed: u64,
    ) -> ClientResult<GenerateResult> {
        let params = encode_generate_params(graph, task, fit_seed, &[sample_seed], false);
        let result = self.call("generate", params)?;
        generate_result_from_json(&result, &self.wire).map_err(ClientError::Wire)
    }

    /// One draw per seed: `generate_batch(graph, task, fit_seed, seeds)`.
    pub fn generate_batch(
        &mut self,
        graph: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seeds: &[u64],
    ) -> ClientResult<GenerateResult> {
        let params = encode_generate_params(graph, task, fit_seed, sample_seeds, true);
        let result = self.call("generate_batch", params)?;
        generate_result_from_json(&result, &self.wire).map_err(ClientError::Wire)
    }

    /// Registers an edge delta against a previously-served graph:
    /// `update_graph(graph, task, fit_seed, delta)`. The result says which
    /// fingerprint now serves the updated graph, the cumulative drift, and
    /// whether the server refitted.
    pub fn update_graph(
        &mut self,
        graph: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        delta: &GraphDelta,
    ) -> ClientResult<UpdateResult> {
        let params = encode_update_params(graph, task, fit_seed, delta);
        let result = self.call("update_graph", params)?;
        update_result_from_json(&result).map_err(ClientError::Wire)
    }

    /// The server's stats snapshot, as raw JSON (shape documented in
    /// [`wire::stats_to_json`](crate::wire::stats_to_json)).
    pub fn stats(&mut self) -> ClientResult<Json> {
        self.call("stats", Json::Obj(Vec::new()))
    }
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient").field("next_id", &self.next_id).finish()
    }
}
