//! A blocking HTTP/1.1 JSON-RPC client for the `fairgen-rpc` wire format.
//!
//! One [`RpcClient`] holds one keep-alive connection and issues requests
//! sequentially (JSON-RPC ids are matched per call). The load harness and
//! the loopback tests run many clients, each on its own thread.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use fairgen_baselines::TaskSpec;
use fairgen_graph::{Graph, GraphDelta};

use crate::codes;
use crate::http::{read_response, HttpError, HttpLimits};
use crate::json::{obj, parse, Json, JsonError};
use crate::wire::{
    encode_generate_params, encode_update_params, generate_result_from_json,
    update_result_from_json, GenerateResult, UpdateResult, WireError, WireLimits,
};

/// A structured JSON-RPC error reported by the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcErrorInfo {
    /// The stable wire code (see [`codes`]).
    pub code: i64,
    /// Human-readable message.
    pub message: String,
    /// The error-kind discriminator from `data.kind`, when present.
    pub kind: Option<String>,
    /// The HTTP status the error arrived under.
    pub http_status: u16,
}

impl RpcErrorInfo {
    /// Whether the server told this client to come back later rather than
    /// reporting a fault in the request: [`codes::OVERLOADED`] (admission
    /// rejected the request — back off and retry here) and
    /// [`codes::SERVER_CLOSED`] (this instance is draining — retry against
    /// another). Every other code means retrying the same request verbatim
    /// would fail the same way.
    pub fn retryable(&self) -> bool {
        matches!(self.code, codes::OVERLOADED | codes::SERVER_CLOSED)
    }

    /// Whether this is specifically the admission-control rejection
    /// ([`codes::OVERLOADED`], HTTP 429).
    pub fn is_overloaded(&self) -> bool {
        self.code == codes::OVERLOADED
    }
}

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The response was not parseable HTTP.
    Http(HttpError),
    /// The response body was not parseable JSON.
    Json(JsonError),
    /// The response JSON did not match the wire schema.
    Wire(WireError),
    /// The server answered with a structured JSON-RPC error.
    Rpc(RpcErrorInfo),
    /// The response id did not echo the request id.
    IdMismatch {
        /// The id the client sent.
        sent: u64,
        /// What came back, rendered.
        got: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o failure: {e}"),
            ClientError::Http(e) => write!(f, "bad http response: {}", e.describe()),
            ClientError::Json(e) => write!(f, "bad json in response: {e}"),
            ClientError::Wire(e) => write!(f, "response schema mismatch: {e}"),
            ClientError::Rpc(e) => {
                write!(f, "server error {} (http {}): {}", e.code, e.http_status, e.message)
            }
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// One keep-alive JSON-RPC connection.
pub struct RpcClient {
    reader: BufReader<TcpStream>,
    limits: HttpLimits,
    wire: WireLimits,
    next_id: u64,
    /// Sent as `X-FairGen-Tenant` on every request when set.
    tenant: Option<String>,
}

impl RpcClient {
    /// Connects with default timeouts (10 s).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        Self::connect_with(addr, Duration::from_secs(10))
    }

    /// Connects with a specific read/write timeout.
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(RpcClient {
            reader: BufReader::new(stream),
            limits: HttpLimits::default(),
            wire: WireLimits::default(),
            next_id: 1,
            tenant: None,
        })
    }

    /// Bills every subsequent call to `tenant` (sent as the
    /// `X-FairGen-Tenant` header). Pass `None` to go back to the anonymous
    /// default tenant.
    pub fn set_tenant(&mut self, tenant: Option<&str>) {
        self.tenant = tenant.map(str::to_string);
    }

    /// The tenant label calls are currently billed to, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Issues one JSON-RPC call and returns the `result` value, or
    /// [`ClientError::Rpc`] when the server answered with an error object.
    pub fn call(&mut self, method: &str, params: Json) -> ClientResult<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = obj(vec![
            ("jsonrpc", Json::Str("2.0".into())),
            ("id", Json::U64(id)),
            ("method", Json::Str(method.into())),
            ("params", params),
        ]);
        let body = envelope.encode();
        let tenant_header = match &self.tenant {
            Some(tenant) => format!("X-FairGen-Tenant: {tenant}\r\n"),
            None => String::new(),
        };
        let request = format!(
            "POST /rpc HTTP/1.1\r\nHost: fairgen\r\nContent-Type: application/json\r\n\
             {tenant_header}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let stream = self.reader.get_ref();
        let mut writer = stream.try_clone()?;
        writer.write_all(request.as_bytes())?;
        writer.flush()?;

        let response = read_response(&mut self.reader, &self.limits).map_err(|e| match e {
            HttpError::Io(io) => ClientError::Io(io),
            other => ClientError::Http(other),
        })?;
        let value = parse(&response.body).map_err(ClientError::Json)?;
        let got_id = value.get("id").cloned().unwrap_or(Json::Null);
        let id_matches = got_id.as_u64() == Some(id);
        if let Some(error) = value.get("error") {
            let info = RpcErrorInfo {
                code: error.get("code").and_then(Json::as_i64).unwrap_or(0),
                message: error.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
                kind: error
                    .get("data")
                    .and_then(|d| d.get("kind"))
                    .and_then(Json::as_str)
                    .map(str::to_string),
                http_status: response.status,
            };
            // A pre-dispatch failure (unparseable body, bad envelope, HTTP
            // reject) legitimately carries a null id — the server never
            // learned ours. Anything else echoing the wrong id belongs to
            // some other call: the connection is desynced, and attributing
            // the error to this request would misreport which call failed.
            let pre_dispatch = matches!(
                info.code,
                codes::PARSE_ERROR | codes::INVALID_REQUEST | codes::HTTP_ERROR
            );
            if !(id_matches || (got_id.is_null() && pre_dispatch)) {
                return Err(ClientError::IdMismatch { sent: id, got: got_id.encode() });
            }
            return Err(ClientError::Rpc(info));
        }
        if !id_matches {
            return Err(ClientError::IdMismatch { sent: id, got: got_id.encode() });
        }
        value.get("result").cloned().ok_or_else(|| {
            ClientError::Wire(WireError {
                field: "result".into(),
                detail: "missing from a non-error response".into(),
            })
        })
    }

    /// One synthetic draw: `generate(graph, task, fit_seed, sample_seed)`.
    pub fn generate(
        &mut self,
        graph: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seed: u64,
    ) -> ClientResult<GenerateResult> {
        let params = encode_generate_params(graph, task, fit_seed, &[sample_seed], false);
        let result = self.call("generate", params)?;
        generate_result_from_json(&result, &self.wire).map_err(ClientError::Wire)
    }

    /// One draw per seed: `generate_batch(graph, task, fit_seed, seeds)`.
    pub fn generate_batch(
        &mut self,
        graph: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seeds: &[u64],
    ) -> ClientResult<GenerateResult> {
        let params = encode_generate_params(graph, task, fit_seed, sample_seeds, true);
        let result = self.call("generate_batch", params)?;
        generate_result_from_json(&result, &self.wire).map_err(ClientError::Wire)
    }

    /// Registers an edge delta against a previously-served graph:
    /// `update_graph(graph, task, fit_seed, delta)`. The result says which
    /// fingerprint now serves the updated graph, the cumulative drift, and
    /// whether the server refitted.
    pub fn update_graph(
        &mut self,
        graph: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        delta: &GraphDelta,
    ) -> ClientResult<UpdateResult> {
        let params = encode_update_params(graph, task, fit_seed, delta);
        let result = self.call("update_graph", params)?;
        update_result_from_json(&result).map_err(ClientError::Wire)
    }

    /// The server's stats snapshot, as raw JSON (shape documented in
    /// [`wire::stats_to_json`](crate::wire::stats_to_json)).
    pub fn stats(&mut self) -> ClientResult<Json> {
        self.call("stats", Json::Obj(Vec::new()))
    }
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient").field("next_id", &self.next_id).finish()
    }
}
