//! The stable wire error-code table.
//!
//! Two code families share the JSON-RPC `error.code` field:
//!
//! * **Transport / envelope codes** (negative, JSON-RPC 2.0 reserved
//!   range): the request never reached a generator — unparseable JSON,
//!   malformed envelope, unknown method, bad params, malformed HTTP.
//! * **Application codes** (positive, `1000`+): a typed [`FairGenError`]
//!   crossed the serving stack. Every variant has exactly one code; the
//!   mapping is append-only — codes are part of the wire contract and must
//!   never be renumbered (pinned by `codes_are_stable` below).
//!
//! Errors are always returned as structured JSON-RPC error objects
//! (`{"code", "message", "data": {"kind"}}`) — never a bare HTTP 500.

use fairgen_core::error::FairGenError;

/// The request body was not valid JSON (JSON-RPC 2.0 "Parse error").
pub const PARSE_ERROR: i64 = -32700;
/// The body parsed but is not a valid request envelope ("Invalid Request").
pub const INVALID_REQUEST: i64 = -32600;
/// The method name is not served here ("Method not found").
pub const METHOD_NOT_FOUND: i64 = -32601;
/// The params are missing fields or have the wrong shape ("Invalid params").
pub const INVALID_PARAMS: i64 = -32602;
/// The HTTP layer rejected the request before JSON-RPC could run
/// (malformed request line/headers, oversized body, bad method/target).
pub const HTTP_ERROR: i64 = -32000;

/// [`FairGenError::InvalidConfig`].
pub const INVALID_CONFIG: i64 = 1001;
/// [`FairGenError::GraphTooSmall`].
pub const GRAPH_TOO_SMALL: i64 = 1002;
/// [`FairGenError::NodeOutOfRange`].
pub const NODE_OUT_OF_RANGE: i64 = 1003;
/// [`FairGenError::LabelOutOfRange`].
pub const LABEL_OUT_OF_RANGE: i64 = 1004;
/// [`FairGenError::GroupUniverseMismatch`].
pub const GROUP_UNIVERSE_MISMATCH: i64 = 1005;
/// [`FairGenError::MissingProtectedGroup`].
pub const MISSING_PROTECTED_GROUP: i64 = 1006;
/// [`FairGenError::MissingLabels`].
pub const MISSING_LABELS: i64 = 1007;
/// [`FairGenError::Generate`].
pub const GENERATE: i64 = 1008;
/// [`FairGenError::DegenerateDistribution`].
pub const DEGENERATE_DISTRIBUTION: i64 = 1009;
/// [`FairGenError::Internal`].
pub const INTERNAL: i64 = 1010;
/// [`FairGenError::CorruptCheckpoint`].
pub const CORRUPT_CHECKPOINT: i64 = 1011;
/// [`FairGenError::UnknownCheckpointTag`].
pub const UNKNOWN_CHECKPOINT_TAG: i64 = 1012;
/// [`FairGenError::MalformedEdgeList`].
pub const MALFORMED_EDGE_LIST: i64 = 1013;
/// [`FairGenError::Io`].
pub const IO: i64 = 1014;
/// [`FairGenError::ServerClosed`] — the one code both the in-process
/// `submit`/`submit_shared` rejection and the RPC layer's own
/// closed-server path report (pinned in `tests/rpc_runtime_paths.rs`).
pub const SERVER_CLOSED: i64 = 1015;
/// [`FairGenError::Overloaded`] — the admission layer refused the request
/// (queue full, rate limited, or queue deadline expired). Unlike
/// [`SERVER_CLOSED`] the condition is transient: clients should back off
/// and retry. Carried over HTTP as status 429.
pub const OVERLOADED: i64 = 1016;

/// The stable wire code for a [`FairGenError`].
pub fn wire_code(e: &FairGenError) -> i64 {
    match e {
        FairGenError::InvalidConfig { .. } => INVALID_CONFIG,
        FairGenError::GraphTooSmall { .. } => GRAPH_TOO_SMALL,
        FairGenError::NodeOutOfRange { .. } => NODE_OUT_OF_RANGE,
        FairGenError::LabelOutOfRange { .. } => LABEL_OUT_OF_RANGE,
        FairGenError::GroupUniverseMismatch { .. } => GROUP_UNIVERSE_MISMATCH,
        FairGenError::MissingProtectedGroup { .. } => MISSING_PROTECTED_GROUP,
        FairGenError::MissingLabels => MISSING_LABELS,
        FairGenError::Generate { .. } => GENERATE,
        FairGenError::DegenerateDistribution { .. } => DEGENERATE_DISTRIBUTION,
        FairGenError::Internal { .. } => INTERNAL,
        FairGenError::ServerClosed => SERVER_CLOSED,
        FairGenError::Overloaded { .. } => OVERLOADED,
        FairGenError::CorruptCheckpoint { .. } => CORRUPT_CHECKPOINT,
        FairGenError::UnknownCheckpointTag { .. } => UNKNOWN_CHECKPOINT_TAG,
        FairGenError::MalformedEdgeList { .. } => MALFORMED_EDGE_LIST,
        FairGenError::Io(_) => IO,
        // `FairGenError` is `#[non_exhaustive]`: a variant added upstream
        // without a row here degrades to INTERNAL instead of breaking the
        // build — `every_variant_has_a_distinct_code` below is the reminder
        // to assign it a real code.
        _ => INTERNAL,
    }
}

/// The variant name for the error's `data.kind` field — lets clients
/// dispatch without string-matching the rendered message.
pub fn kind_name(e: &FairGenError) -> &'static str {
    match e {
        FairGenError::InvalidConfig { .. } => "InvalidConfig",
        FairGenError::GraphTooSmall { .. } => "GraphTooSmall",
        FairGenError::NodeOutOfRange { .. } => "NodeOutOfRange",
        FairGenError::LabelOutOfRange { .. } => "LabelOutOfRange",
        FairGenError::GroupUniverseMismatch { .. } => "GroupUniverseMismatch",
        FairGenError::MissingProtectedGroup { .. } => "MissingProtectedGroup",
        FairGenError::MissingLabels => "MissingLabels",
        FairGenError::Generate { .. } => "Generate",
        FairGenError::DegenerateDistribution { .. } => "DegenerateDistribution",
        FairGenError::Internal { .. } => "Internal",
        FairGenError::ServerClosed => "ServerClosed",
        FairGenError::Overloaded { .. } => "Overloaded",
        FairGenError::CorruptCheckpoint { .. } => "CorruptCheckpoint",
        FairGenError::UnknownCheckpointTag { .. } => "UnknownCheckpointTag",
        FairGenError::MalformedEdgeList { .. } => "MalformedEdgeList",
        FairGenError::Io(_) => "Io",
        _ => "Internal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<FairGenError> {
        vec![
            FairGenError::InvalidConfig { field: "x", message: "m".into() },
            FairGenError::GraphTooSmall { nodes: 1, min_nodes: 2 },
            FairGenError::NodeOutOfRange { node: 3, nodes: 2 },
            FairGenError::LabelOutOfRange { node: 0, label: 5, num_classes: 2 },
            FairGenError::GroupUniverseMismatch { group_universe: 3, nodes: 4 },
            FairGenError::MissingProtectedGroup { gamma: 0.5 },
            FairGenError::MissingLabels,
            FairGenError::Generate { detail: "d".into() },
            FairGenError::DegenerateDistribution { detail: "d".into() },
            FairGenError::Internal { detail: "d".into() },
            FairGenError::CorruptCheckpoint { detail: "d".into() },
            FairGenError::UnknownCheckpointTag { tag: "t".into() },
            FairGenError::MalformedEdgeList { line: 1, text: "x".into() },
            FairGenError::Io(std::io::Error::other("io")),
            FairGenError::ServerClosed,
            FairGenError::Overloaded { reason: "queue_full".into() },
        ]
    }

    #[test]
    fn every_variant_has_a_distinct_code() {
        let errors = one_of_each();
        let codes: Vec<i64> = errors.iter().map(wire_code).collect();
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "{:?} and {:?} share code {a}", errors[i], errors[j]);
                }
            }
        }
        for code in codes {
            assert!((1000..2000).contains(&code), "application codes live in 1000..2000");
        }
    }

    #[test]
    fn codes_are_stable() {
        // The wire contract: these numbers must never change. Append new
        // variants with new codes instead.
        let pinned: Vec<(i64, FairGenError)> =
            one_of_each().into_iter().zip(1001..).map(|(e, c)| (c, e)).collect();
        for (code, e) in pinned {
            assert_eq!(wire_code(&e), code, "renumbered {e:?}");
        }
    }

    #[test]
    fn kind_names_match_variants() {
        for e in one_of_each() {
            let kind = kind_name(&e);
            assert!(format!("{e:?}").starts_with(kind), "{e:?} vs {kind}");
        }
    }
}
