//! A minimal HTTP/1.1 message layer over `std::io` streams.
//!
//! Implements exactly what the JSON-RPC front-end needs: parse one request
//! (request line, headers, `Content-Length`-framed body) off a buffered
//! reader with hard limits, and write one `Content-Length`-framed response.
//! Persistent connections are supported (HTTP/1.1 keep-alive semantics,
//! `Connection: close` honored); chunked transfer coding is rejected with a
//! typed error rather than implemented.
//!
//! Every malformed-input path is a typed [`HttpError`] carrying the HTTP
//! status the server should answer with — never a panic, never a bare 500
//! (proptested in `tests/http_props.rs`).

use std::io::{self, BufRead, Write};

/// Parser resource limits. Defaults are generous for RPC traffic while
/// keeping a hostile peer from ballooning memory.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Maximum bytes in the request line or any single header line.
    pub max_line_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum `Content-Length` the server will read.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_line_bytes: 8 * 1024, max_headers: 64, max_body_bytes: 64 << 20 }
    }
}

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Request method (`POST`, `GET`, …), as sent.
    pub method: String,
    /// Request target (`/rpc`).
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(|v| v.to_ascii_lowercase()) {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed, each mapping to a 4xx/5xx status.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly between requests — not an
    /// error to report, just "no more requests".
    Eof,
    /// The socket read timed out. `mid_request` distinguishes an idle
    /// keep-alive connection (close quietly) from a stalled upload
    /// (answer 408).
    Timeout {
        /// Whether any bytes of the next request had already arrived.
        mid_request: bool,
    },
    /// Connection died mid-request or another I/O failure.
    Io(io::Error),
    /// Request line is not `METHOD SP TARGET SP HTTP/1.x` (status 400).
    BadRequestLine,
    /// The HTTP version is not 1.0 or 1.1 (status 505).
    UnsupportedVersion,
    /// A header line has no `:`, a malformed name, or non-UTF-8 bytes
    /// (status 400).
    BadHeader,
    /// More than [`HttpLimits::max_headers`] header lines (status 431).
    TooManyHeaders,
    /// A line exceeded [`HttpLimits::max_line_bytes`] (status 431).
    LineTooLong,
    /// `Content-Length` duplicated with conflicting values or not a
    /// decimal number (status 400). A missing `Content-Length` is not an
    /// error: per RFC 9112 §6.3 the request simply has no body.
    BadContentLength,
    /// Declared body exceeds [`HttpLimits::max_body_bytes`] (status 413).
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: u64,
    },
    /// `Transfer-Encoding` is declared; this server only frames bodies by
    /// `Content-Length` (status 501).
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The `(status, reason)` this parse failure should be answered with.
    /// [`Eof`](HttpError::Eof), timeouts, and I/O failures have no
    /// answerable peer state and return `None`.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Eof | HttpError::Io(_) => None,
            HttpError::Timeout { mid_request: false } => None,
            HttpError::Timeout { mid_request: true } => Some((408, "Request Timeout")),
            HttpError::BadRequestLine | HttpError::BadHeader => Some((400, "Bad Request")),
            HttpError::UnsupportedVersion => Some((505, "HTTP Version Not Supported")),
            HttpError::TooManyHeaders | HttpError::LineTooLong => {
                Some((431, "Request Header Fields Too Large"))
            }
            HttpError::BadContentLength => Some((400, "Bad Request")),
            HttpError::BodyTooLarge { .. } => Some((413, "Content Too Large")),
            HttpError::UnsupportedTransferEncoding => Some((501, "Not Implemented")),
        }
    }

    /// One-line human description (goes into the JSON error body).
    pub fn describe(&self) -> String {
        match self {
            HttpError::Eof => "connection closed".into(),
            HttpError::Timeout { .. } => "read timed out".into(),
            HttpError::Io(e) => format!("i/o failure: {e}"),
            HttpError::BadRequestLine => "malformed request line".into(),
            HttpError::UnsupportedVersion => "only HTTP/1.0 and HTTP/1.1 are supported".into(),
            HttpError::BadHeader => "malformed header line".into(),
            HttpError::TooManyHeaders => "too many header lines".into(),
            HttpError::LineTooLong => "header line too long".into(),
            HttpError::BadContentLength => "malformed or conflicting Content-Length".into(),
            HttpError::BodyTooLarge { declared } => {
                format!("declared body of {declared} bytes exceeds the server limit")
            }
            HttpError::UnsupportedTransferEncoding => {
                "Transfer-Encoding is not supported; frame the body with Content-Length".into()
            }
        }
    }
}

fn io_to_http(e: io::Error, mid_request: bool) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            HttpError::Timeout { mid_request }
        }
        // Before any bytes of the next message, a clean FIN and an abortive
        // RST mean the same thing: the peer is gone and nothing was lost.
        // Mid-message they stay hard I/O errors — data was cut off.
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
            if !mid_request =>
        {
            HttpError::Eof
        }
        _ => HttpError::Io(e),
    }
}

/// Reads one line terminated by `\n` (tolerating a preceding `\r`),
/// enforcing the line-length limit. Returns the line without terminators.
fn read_line(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
    mid_request: &mut bool,
) -> Result<Vec<u8>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(if *mid_request {
                    HttpError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-request",
                    ))
                } else {
                    HttpError::Eof
                });
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_to_http(e, *mid_request)),
        }
        *mid_request = true;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(line);
        }
        if line.len() >= limits.max_line_bytes {
            return Err(HttpError::LineTooLong);
        }
        line.push(byte[0]);
    }
}

/// Reads `declared` body bytes in bounded chunks. The buffer grows with
/// the bytes actually received, so a peer declaring a large
/// `Content-Length` (within [`HttpLimits::max_body_bytes`]) and then
/// stalling costs one chunk of memory, not the full declared length.
fn read_body(reader: &mut impl BufRead, declared: usize) -> Result<Vec<u8>, HttpError> {
    const CHUNK: usize = 64 * 1024;
    let mut body = Vec::with_capacity(declared.min(CHUNK));
    let mut buf = [0u8; 8 * 1024];
    let mut remaining = declared;
    while remaining > 0 {
        let want = remaining.min(buf.len());
        match reader.read(&mut buf[..want]) {
            Ok(0) => {
                return Err(HttpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                )));
            }
            Ok(k) => {
                body.extend_from_slice(&buf[..k]);
                remaining -= k;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_to_http(e, true)),
        }
    }
    Ok(body)
}

/// Reads one request off `reader`. Blocks until a request arrives, the
/// connection closes ([`HttpError::Eof`]), or the socket's read timeout
/// fires ([`HttpError::Timeout`]).
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<HttpRequest, HttpError> {
    // `mid_request` flips once the first byte arrives: EOF/timeouts before
    // that are a quiet connection close, after it a reportable error.
    let mut mid_request = false;
    let request_line = read_line(reader, limits, &mut mid_request)?;
    let request_line =
        std::str::from_utf8(&request_line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
            _ => return Err(HttpError::BadRequestLine),
        };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(HttpError::UnsupportedVersion),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !method.bytes().all(|b| b.is_ascii_alphanumeric()) {
        return Err(HttpError::BadRequestLine);
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, limits, &mut mid_request)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let line = std::str::from_utf8(&line).map_err(|_| HttpError::BadHeader)?;
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic() && b != b':') {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut declared: Option<u64> = None;
    for (k, v) in &headers {
        if k == "content-length" {
            let parsed: u64 = v.parse().map_err(|_| HttpError::BadContentLength)?;
            match declared {
                Some(prev) if prev != parsed => return Err(HttpError::BadContentLength),
                _ => declared = Some(parsed),
            }
        }
    }
    let body = match declared {
        None | Some(0) => Vec::new(),
        Some(n) if n > limits.max_body_bytes as u64 => {
            return Err(HttpError::BodyTooLarge { declared: n });
        }
        Some(n) => read_body(reader, n as usize)?,
    };

    Ok(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
        body,
    })
}

/// One parsed HTTP response (client side).
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Reads one response off `reader` (the client half of the protocol).
pub fn read_response(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<HttpResponse, HttpError> {
    let mut mid_request = false;
    let status_line = read_line(reader, limits, &mut mid_request)?;
    let status_line =
        std::str::from_utf8(&status_line).map_err(|_| HttpError::BadRequestLine)?;
    let rest = status_line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
        .ok_or(HttpError::BadRequestLine)?;
    let (code, reason) = rest.split_once(' ').unwrap_or((rest, ""));
    let status: u16 = code.parse().map_err(|_| HttpError::BadRequestLine)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, limits, &mut mid_request)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let line = std::str::from_utf8(&line).map_err(|_| HttpError::BadHeader)?;
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let declared: u64 = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse().map_err(|_| HttpError::BadContentLength)?,
        None => 0,
    };
    if declared > limits.max_body_bytes as u64 {
        return Err(HttpError::BodyTooLarge { declared });
    }
    let body = read_body(reader, declared as usize)?;
    Ok(HttpResponse { status, reason: reason.to_string(), headers, body })
}

/// Writes one `Content-Length`-framed response. `close` adds
/// `Connection: close` so the peer knows not to pipeline further requests.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_response_ext(writer, status, reason, content_type, body, close, &[])
}

/// [`write_response`] with extra response headers (e.g. `Retry-After` on
/// 429/503). Callers own header-name/value validity — values must be
/// single-line ASCII.
pub fn write_response_ext(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    // One buffer, one write: header and body in separate TCP segments
    // trips Nagle + delayed-ACK (~40 ms per response on loopback).
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    let mut out = out.into_bytes();
    out.extend_from_slice(body);
    writer.write_all(&out)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_bytes(bytes: &[u8]) -> Result<HttpRequest, HttpError> {
        let mut reader = BufReader::new(bytes);
        read_request(&mut reader, &HttpLimits::default())
    }

    #[test]
    fn well_formed_post_parses() {
        let req =
            parse_bytes(b"POST /rpc HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/rpc");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_is_honored() {
        let req =
            parse_bytes(b"POST / HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n")
                .expect("parse");
        assert!(!req.keep_alive());
        let old = parse_bytes(b"GET / HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!old.keep_alive());
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse_bytes(b"POST / HTTP/1.1\nContent-Length: 2\n\nok").expect("parse");
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn immediate_eof_is_quiet() {
        assert!(matches!(parse_bytes(b"").unwrap_err(), HttpError::Eof));
    }

    #[test]
    fn truncation_mid_request_is_an_io_error() {
        for partial in [
            &b"POST / HT"[..],
            b"POST / HTTP/1.1\r\nContent-Le",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
        ] {
            assert!(
                matches!(parse_bytes(partial).unwrap_err(), HttpError::Io(_)),
                "for {partial:?}"
            );
        }
    }

    #[test]
    fn malformed_inputs_get_answerable_statuses() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"NOT-A-REQUEST-LINE\r\n\r\n", 400),
            (b"POST / HTTP/2.0\r\n\r\n", 505),
            (b"POST / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n", 413),
        ];
        for (input, want) in cases {
            let err = parse_bytes(input).unwrap_err();
            let (status, _) = err.status().unwrap_or((0, ""));
            assert_eq!(status, want, "for {:?} ({err:?})", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn header_limits_are_enforced() {
        let mut many = b"POST / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert!(matches!(parse_bytes(&many).unwrap_err(), HttpError::TooManyHeaders));

        let mut long = b"POST / HTTP/1.1\r\nbig: ".to_vec();
        long.extend(std::iter::repeat_n(b'x', 10 * 1024));
        long.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse_bytes(&long).unwrap_err(), HttpError::LineTooLong));
    }

    #[test]
    fn response_writer_frames_and_parses_back() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{\"x\":1}", false)
            .expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"));
    }

    #[test]
    fn extra_headers_ride_before_the_blank_line() {
        let mut out = Vec::new();
        write_response_ext(
            &mut out,
            429,
            "Too Many Requests",
            "application/json",
            b"{}",
            false,
            &[("Retry-After", "3".to_string())],
        )
        .expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.contains("Retry-After: 3\r\n"));
        let mut reader = BufReader::new(text.as_bytes());
        let response =
            read_response(&mut reader, &HttpLimits::default()).expect("parse own frame");
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("3"));
    }
}
