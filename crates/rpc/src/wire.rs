//! Serde-free wire types: the JSON shapes of graphs, tasks, requests, and
//! responses, with hand-written encode/decode on the vendored [`Json`]
//! tree.
//!
//! # Wire format
//!
//! A request is an HTTP `POST` to `/rpc` whose body is a JSON-RPC 2.0
//! envelope:
//!
//! ```json
//! {"jsonrpc": "2.0", "id": 1, "method": "generate", "params": {
//!    "graph": {"n": 6, "edges": [[0,1],[1,2]]},
//!    "task":  {"labeled": [[0,1]], "num_classes": 2,
//!              "protected": {"universe": 6, "members": [0,1,2]}},
//!    "fit_seed": 42, "sample_seed": 7}}
//! ```
//!
//! `generate_batch` takes `sample_seeds: [u64]` instead of `sample_seed`;
//! `stats` takes no params. Success answers carry `result`, failures a
//! structured `error` (`{"code", "message", "data": {"kind"}}`) — see
//! [`codes`] for the code table.

use fairgen_baselines::TaskSpec;
use fairgen_graph::{Graph, GraphDelta, NodeId, NodeSet};
use fairgen_serve::{GenerateResponse, ServedFrom, ServerStats, ShardStats, UpdateOutcome};

use crate::codes;
use crate::json::{obj, Json};

/// Why a structurally-valid JSON value does not decode into the expected
/// wire type. Maps to [`codes::INVALID_PARAMS`] (or
/// [`codes::INVALID_REQUEST`] at the envelope level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Dotted path of the offending field (e.g. `params.graph.edges[3]`).
    pub field: String,
    /// What was wrong.
    pub detail: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "field `{}`: {}", self.field, self.detail)
    }
}

impl std::error::Error for WireError {}

fn wire_err(field: impl Into<String>, detail: impl Into<String>) -> WireError {
    WireError { field: field.into(), detail: detail.into() }
}

/// Decode-time resource bounds. The scalar fields `n`,
/// `protected.universe`, and `num_classes` drive O(value) allocations when
/// the [`Graph`]/[`NodeSet`]/task are constructed, so without a bound a
/// few-byte request (`{"n": 18446744073709551615, "edges": []}`) would
/// force a huge infallible allocation and abort the process. Every decode
/// validates against these limits first and fails with a typed
/// [`WireError`] (→ [`codes::INVALID_PARAMS`] on the wire) instead.
#[derive(Clone, Copy, Debug)]
pub struct WireLimits {
    /// Maximum graph node count — also bounds `protected.universe` and
    /// `num_classes`, which allocate proportionally downstream.
    pub max_nodes: usize,
    /// Maximum number of edges in one graph.
    pub max_edges: usize,
    /// Maximum byte length of a tenant label (the `tenant` param or the
    /// `X-FairGen-Tenant` header). Labels are cloned into per-tenant
    /// rate-limiter buckets and drop-ring entries, so an unbounded label
    /// would let one request pin arbitrary memory.
    pub max_tenant_bytes: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        // 4M nodes / 16M edges keeps the largest decode-triggered
        // allocation in the same ballpark as HttpLimits::max_body_bytes.
        WireLimits { max_nodes: 1 << 22, max_edges: 1 << 24, max_tenant_bytes: 128 }
    }
}

/// Extracts the tenant label for a request: the `tenant` param when
/// present, else the `X-FairGen-Tenant` header value, else `None` (the
/// anonymous default tenant). Either source is bounded by
/// [`WireLimits::max_tenant_bytes`] and must be a non-empty string.
pub fn decode_tenant(
    params: &Json,
    header: Option<&str>,
    limits: &WireLimits,
) -> Result<Option<String>, WireError> {
    let (label, field) = match params.get("tenant") {
        Some(Json::Str(s)) => (Some(s.as_str()), "tenant"),
        Some(_) => return Err(wire_err("tenant", "expected a string label")),
        None => (header, "x-fairgen-tenant header"),
    };
    match label {
        None => Ok(None),
        Some("") => Err(wire_err(field, "tenant label must be non-empty")),
        Some(s) if s.len() > limits.max_tenant_bytes => Err(wire_err(
            field,
            format!(
                "tenant label of {} bytes exceeds the server limit of {}",
                s.len(),
                limits.max_tenant_bytes
            ),
        )),
        Some(s) => Ok(Some(s.to_string())),
    }
}

fn bounded(value: usize, limit: usize, field: &str, what: &str) -> Result<usize, WireError> {
    if value > limit {
        return Err(wire_err(
            field,
            format!("{value} exceeds the server limit of {limit} {what}"),
        ));
    }
    Ok(value)
}

fn get_u64(params: &Json, field: &str) -> Result<u64, WireError> {
    params
        .get(field)
        .ok_or_else(|| wire_err(field, "missing"))?
        .as_u64()
        .ok_or_else(|| wire_err(field, "expected an unsigned integer"))
}

fn get_usize(params: &Json, field: &str) -> Result<usize, WireError> {
    usize::try_from(get_u64(params, field)?)
        .map_err(|_| wire_err(field, "does not fit in usize"))
}

fn node_id(v: &Json, field: &str) -> Result<NodeId, WireError> {
    let raw = v.as_u64().ok_or_else(|| wire_err(field, "expected an unsigned integer"))?;
    NodeId::try_from(raw).map_err(|_| wire_err(field, "node id does not fit in u32"))
}

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

/// Encodes a graph as `{"n": N, "edges": [[u,v], …]}` (each undirected edge
/// once, `u < v`, ascending — the iteration order of [`Graph::edges`]).
pub fn graph_to_json(g: &Graph) -> Json {
    let edges = g
        .edges()
        .map(|(u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
        .collect();
    obj(vec![("n", Json::U64(g.n() as u64)), ("edges", Json::Arr(edges))])
}

/// Decodes a graph, validating every node id against `n` and both `n` and
/// the edge count against `limits` (before anything proportional to them
/// is allocated).
pub fn graph_from_json(v: &Json, limits: &WireLimits) -> Result<Graph, WireError> {
    let n = bounded(get_usize(v, "n")?, limits.max_nodes, "n", "nodes")?;
    let raw_edges = v
        .get("edges")
        .ok_or_else(|| wire_err("edges", "missing"))?
        .as_arr()
        .ok_or_else(|| wire_err("edges", "expected an array of [u, v] pairs"))?;
    bounded(raw_edges.len(), limits.max_edges, "edges", "edges")?;
    let mut edges = Vec::with_capacity(raw_edges.len());
    for (i, e) in raw_edges.iter().enumerate() {
        let field = format!("edges[{i}]");
        let pair = e.as_arr().ok_or_else(|| wire_err(&field, "expected a [u, v] pair"))?;
        if pair.len() != 2 {
            return Err(wire_err(&field, "expected exactly two endpoints"));
        }
        edges.push((node_id(&pair[0], &field)?, node_id(&pair[1], &field)?));
    }
    Graph::try_from_edges(n, &edges).map_err(|e| wire_err("edges", e.to_string()))
}

// ---------------------------------------------------------------------------
// TaskSpec
// ---------------------------------------------------------------------------

/// Encodes a task as `{"labeled": [[node, class], …], "num_classes": C,
/// "protected": {"universe": U, "members": […]} | null}`.
pub fn task_to_json(task: &TaskSpec) -> Json {
    let labeled = task
        .labeled
        .iter()
        .map(|&(node, class)| Json::Arr(vec![Json::U64(node as u64), Json::U64(class as u64)]))
        .collect();
    let protected = match &task.protected {
        Some(set) => obj(vec![
            ("universe", Json::U64(set.universe() as u64)),
            (
                "members",
                Json::Arr(set.members().iter().map(|&v| Json::U64(v as u64)).collect()),
            ),
        ]),
        None => Json::Null,
    };
    obj(vec![
        ("labeled", Json::Arr(labeled)),
        ("num_classes", Json::U64(task.num_classes as u64)),
        ("protected", protected),
    ])
}

/// Decodes a task. Structural validation only (ids fit, members are inside
/// the declared universe, `universe`/`num_classes` within `limits`) —
/// semantic validation against the graph happens in [`TaskSpec::validate`]
/// on the serving side.
pub fn task_from_json(v: &Json, limits: &WireLimits) -> Result<TaskSpec, WireError> {
    let raw_labeled = v
        .get("labeled")
        .ok_or_else(|| wire_err("labeled", "missing"))?
        .as_arr()
        .ok_or_else(|| wire_err("labeled", "expected an array of [node, class] pairs"))?;
    let mut labeled = Vec::with_capacity(raw_labeled.len());
    for (i, pair) in raw_labeled.iter().enumerate() {
        let field = format!("labeled[{i}]");
        let pair =
            pair.as_arr().ok_or_else(|| wire_err(&field, "expected a [node, class] pair"))?;
        if pair.len() != 2 {
            return Err(wire_err(&field, "expected exactly [node, class]"));
        }
        let node = node_id(&pair[0], &field)?;
        let class = usize::try_from(
            pair[1].as_u64().ok_or_else(|| wire_err(&field, "class must be unsigned"))?,
        )
        .map_err(|_| wire_err(&field, "class does not fit in usize"))?;
        labeled.push((node, class));
    }
    let num_classes =
        bounded(get_usize(v, "num_classes")?, limits.max_nodes, "num_classes", "classes")?;
    let protected = match v.get("protected") {
        None | Some(Json::Null) => None,
        Some(p) => {
            let universe = get_usize(p, "universe")
                .map_err(|_| wire_err("protected.universe", "missing or not unsigned"))?;
            // Bounding also keeps `universe` far below u32::MAX, so the
            // `n as NodeId` inside NodeSet construction cannot truncate.
            let universe = bounded(universe, limits.max_nodes, "protected.universe", "nodes")?;
            let raw = p
                .get("members")
                .ok_or_else(|| wire_err("protected.members", "missing"))?
                .as_arr()
                .ok_or_else(|| wire_err("protected.members", "expected an array"))?;
            let mut members = Vec::with_capacity(raw.len());
            for (i, m) in raw.iter().enumerate() {
                let field = format!("protected.members[{i}]");
                let id = node_id(m, &field)?;
                if id as usize >= universe {
                    return Err(wire_err(&field, "member outside the declared universe"));
                }
                members.push(id);
            }
            Some(NodeSet::from_members(universe, &members))
        }
    };
    Ok(TaskSpec::new(labeled, num_classes, protected))
}

// ---------------------------------------------------------------------------
// RPC envelope
// ---------------------------------------------------------------------------

/// A decoded JSON-RPC request envelope.
#[derive(Clone, Debug)]
pub struct RpcRequest {
    /// The request id, echoed verbatim in the response (`Json::Null` when
    /// the client sent none).
    pub id: Json,
    /// The method name.
    pub method: String,
    /// The params object (`Json::Null` when absent).
    pub params: Json,
}

/// Decodes and validates the envelope: must be an object with a string
/// `method`; `jsonrpc`, when present, must be `"2.0"`; `id`, when present,
/// must be a string, number, or null (per JSON-RPC 2.0).
pub fn decode_envelope(v: &Json) -> Result<RpcRequest, WireError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(wire_err("request", "expected a JSON object"));
    }
    if let Some(version) = v.get("jsonrpc") {
        if version.as_str() != Some("2.0") {
            return Err(wire_err("jsonrpc", "expected \"2.0\""));
        }
    }
    let method = v
        .get("method")
        .ok_or_else(|| wire_err("method", "missing"))?
        .as_str()
        .ok_or_else(|| wire_err("method", "expected a string"))?
        .to_string();
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    if !matches!(id, Json::Null | Json::Str(_) | Json::U64(_) | Json::I64(_) | Json::F64(_)) {
        return Err(wire_err("id", "expected a string, number, or null"));
    }
    let params = v.get("params").cloned().unwrap_or(Json::Null);
    Ok(RpcRequest { id, method, params })
}

/// The params of `generate` / `generate_batch`, decoded.
#[derive(Clone, Debug)]
pub struct GenerateParams {
    /// The observed graph to fit on.
    pub graph: Graph,
    /// Task metadata.
    pub task: TaskSpec,
    /// The fit seed (cache-key content).
    pub fit_seed: u64,
    /// One synthetic draw per seed.
    pub sample_seeds: Vec<u64>,
}

/// Decodes `generate` params (`sample_seed`, exactly one draw) or
/// `generate_batch` params (`sample_seeds`, any number), per `batch`.
pub fn decode_generate_params(
    params: &Json,
    batch: bool,
    limits: &WireLimits,
) -> Result<GenerateParams, WireError> {
    if !matches!(params, Json::Obj(_)) {
        return Err(wire_err("params", "expected an object"));
    }
    let graph = graph_from_json(
        params.get("graph").ok_or_else(|| wire_err("graph", "missing"))?,
        limits,
    )?;
    let task =
        task_from_json(params.get("task").ok_or_else(|| wire_err("task", "missing"))?, limits)?;
    let fit_seed = get_u64(params, "fit_seed")?;
    let sample_seeds = if batch {
        let raw = params
            .get("sample_seeds")
            .ok_or_else(|| wire_err("sample_seeds", "missing"))?
            .as_arr()
            .ok_or_else(|| wire_err("sample_seeds", "expected an array of unsigned seeds"))?;
        raw.iter()
            .enumerate()
            .map(|(i, s)| {
                s.as_u64().ok_or_else(|| {
                    wire_err(format!("sample_seeds[{i}]"), "expected an unsigned integer")
                })
            })
            .collect::<Result<Vec<u64>, WireError>>()?
    } else {
        vec![get_u64(params, "sample_seed")?]
    };
    Ok(GenerateParams { graph, task, fit_seed, sample_seeds })
}

/// Encodes the params of a `generate`/`generate_batch` call (client side).
pub fn encode_generate_params(
    graph: &Graph,
    task: &TaskSpec,
    fit_seed: u64,
    sample_seeds: &[u64],
    batch: bool,
) -> Json {
    let mut fields = vec![
        ("graph", graph_to_json(graph)),
        ("task", task_to_json(task)),
        ("fit_seed", Json::U64(fit_seed)),
    ];
    if batch {
        fields.push((
            "sample_seeds",
            Json::Arr(sample_seeds.iter().map(|&s| Json::U64(s)).collect()),
        ));
    } else {
        fields.push(("sample_seed", Json::U64(sample_seeds[0])));
    }
    obj(fields)
}

// ---------------------------------------------------------------------------
// Graph deltas (`update_graph`)
// ---------------------------------------------------------------------------

fn edge_pairs(
    v: &Json,
    field: &str,
    limits: &WireLimits,
) -> Result<Vec<(NodeId, NodeId)>, WireError> {
    let raw = v.as_arr().ok_or_else(|| wire_err(field, "expected an array of [u, v] pairs"))?;
    bounded(raw.len(), limits.max_edges, field, "edges")?;
    let mut pairs = Vec::with_capacity(raw.len());
    for (i, e) in raw.iter().enumerate() {
        let item = format!("{field}[{i}]");
        let pair = e.as_arr().ok_or_else(|| wire_err(&item, "expected a [u, v] pair"))?;
        if pair.len() != 2 {
            return Err(wire_err(&item, "expected exactly two endpoints"));
        }
        pairs.push((node_id(&pair[0], &item)?, node_id(&pair[1], &item)?));
    }
    Ok(pairs)
}

fn edges_to_json(pairs: &[(NodeId, NodeId)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
            .collect(),
    )
}

/// The params of `update_graph`, decoded: the pre-delta request content
/// (identifying the model lineage being evolved) plus the edge delta.
#[derive(Clone, Debug)]
pub struct UpdateParams {
    /// The pre-delta observed graph.
    pub graph: Graph,
    /// Task metadata.
    pub task: TaskSpec,
    /// The fit seed.
    pub fit_seed: u64,
    /// Edge insertions/removals to apply.
    pub delta: GraphDelta,
}

/// Decodes `update_graph` params. The delta is
/// `{"insert": [[u,v], …], "remove": [[u,v], …]}`; either list may be
/// absent (empty), both are bounded by [`WireLimits::max_edges`].
pub fn decode_update_params(
    params: &Json,
    limits: &WireLimits,
) -> Result<UpdateParams, WireError> {
    if !matches!(params, Json::Obj(_)) {
        return Err(wire_err("params", "expected an object"));
    }
    let graph = graph_from_json(
        params.get("graph").ok_or_else(|| wire_err("graph", "missing"))?,
        limits,
    )?;
    let task =
        task_from_json(params.get("task").ok_or_else(|| wire_err("task", "missing"))?, limits)?;
    let fit_seed = get_u64(params, "fit_seed")?;
    let delta_json = params.get("delta").ok_or_else(|| wire_err("delta", "missing"))?;
    if !matches!(delta_json, Json::Obj(_)) {
        return Err(wire_err("delta", "expected an object"));
    }
    let mut delta = GraphDelta::empty();
    if let Some(ins) = delta_json.get("insert") {
        delta.insert = edge_pairs(ins, "delta.insert", limits)?;
    }
    if let Some(rem) = delta_json.get("remove") {
        delta.remove = edge_pairs(rem, "delta.remove", limits)?;
    }
    Ok(UpdateParams { graph, task, fit_seed, delta })
}

/// Encodes the params of an `update_graph` call (client side).
pub fn encode_update_params(
    graph: &Graph,
    task: &TaskSpec,
    fit_seed: u64,
    delta: &GraphDelta,
) -> Json {
    obj(vec![
        ("graph", graph_to_json(graph)),
        ("task", task_to_json(task)),
        ("fit_seed", Json::U64(fit_seed)),
        (
            "delta",
            obj(vec![
                ("insert", edges_to_json(&delta.insert)),
                ("remove", edges_to_json(&delta.remove)),
            ]),
        ),
    ])
}

/// Encodes an [`UpdateOutcome`] as `{"old_fingerprint", "new_fingerprint",
/// "root_fingerprint", "drift", "refit"}` (fingerprints as hex strings).
pub fn update_result_to_json(outcome: &UpdateOutcome) -> Json {
    obj(vec![
        ("old_fingerprint", Json::Str(outcome.old_fingerprint.to_hex())),
        ("new_fingerprint", Json::Str(outcome.new_fingerprint.to_hex())),
        ("root_fingerprint", Json::Str(outcome.root_fingerprint.to_hex())),
        ("drift", Json::F64(outcome.drift)),
        ("refit", Json::Bool(outcome.refit)),
    ])
}

/// An `update_graph` result decoded on the client side — fingerprints stay
/// hex strings, like [`GenerateResult::fingerprint`].
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateResult {
    /// Fingerprint of the pre-delta request content.
    pub old_fingerprint: String,
    /// Fingerprint of the post-delta request content (the key for
    /// subsequent `generate` calls).
    pub new_fingerprint: String,
    /// The lineage root the drift was measured against.
    pub root_fingerprint: String,
    /// Cumulative drift relative to the root's base graph.
    pub drift: f64,
    /// Whether the server refitted.
    pub refit: bool,
}

/// Decodes an `update_graph` result.
pub fn update_result_from_json(v: &Json) -> Result<UpdateResult, WireError> {
    let fp = |field: &str| -> Result<String, WireError> {
        Ok(v.get(field)
            .and_then(Json::as_str)
            .ok_or_else(|| wire_err(field, "missing or not a string"))?
            .to_string())
    };
    Ok(UpdateResult {
        old_fingerprint: fp("old_fingerprint")?,
        new_fingerprint: fp("new_fingerprint")?,
        root_fingerprint: fp("root_fingerprint")?,
        drift: v
            .get("drift")
            .and_then(Json::as_f64)
            .ok_or_else(|| wire_err("drift", "missing or not a number"))?,
        refit: v
            .get("refit")
            .and_then(Json::as_bool)
            .ok_or_else(|| wire_err("refit", "missing or not a boolean"))?,
    })
}

/// The wire name of a [`ServedFrom`] outcome. A stale outcome's drift
/// score travels as a separate `drift` field on the result object
/// (attached by [`generate_result_to_json`]), not in the name.
pub fn served_from_str(s: ServedFrom) -> &'static str {
    match s {
        ServedFrom::ColdFit => "cold_fit",
        ServedFrom::Memory => "memory",
        ServedFrom::Checkpoint => "checkpoint",
        ServedFrom::DedupCache => "dedup_cache",
        ServedFrom::Stale { .. } => "stale",
    }
}

/// Parses a wire [`ServedFrom`] name. `"stale"` parses with a zero drift
/// placeholder — [`generate_result_from_json`] restores the real score
/// from the result's `drift` field.
pub fn served_from_parse(s: &str) -> Option<ServedFrom> {
    match s {
        "cold_fit" => Some(ServedFrom::ColdFit),
        "memory" => Some(ServedFrom::Memory),
        "checkpoint" => Some(ServedFrom::Checkpoint),
        "dedup_cache" => Some(ServedFrom::DedupCache),
        "stale" => Some(ServedFrom::Stale { drift: 0.0 }),
        _ => None,
    }
}

/// Encodes a serving response as
/// `{"fingerprint": "<hex>", "served_from": "<outcome>", "graphs": […]}`,
/// plus a `drift` number when the outcome is stale-but-bounded.
pub fn generate_result_to_json(response: &GenerateResponse) -> Json {
    let mut fields = vec![
        ("fingerprint", Json::Str(response.fingerprint.to_hex())),
        ("served_from", Json::Str(served_from_str(response.served_from).into())),
    ];
    if let ServedFrom::Stale { drift } = response.served_from {
        fields.push(("drift", Json::F64(drift)));
    }
    fields.push(("graphs", Json::Arr(response.graphs.iter().map(graph_to_json).collect())));
    obj(fields)
}

/// A `generate`/`generate_batch` result decoded on the client side. The
/// fingerprint stays a hex string — it is an opaque cache key on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateResult {
    /// Hex rendering of the serving cache key.
    pub fingerprint: String,
    /// Which serving path answered.
    pub served_from: ServedFrom,
    /// One synthetic graph per requested seed, in request order.
    pub graphs: Vec<Graph>,
}

/// Decodes a `generate`/`generate_batch` result. `limits` bounds the
/// decoded graphs the same way the server bounds request graphs — a
/// misbehaving server cannot DoS the client either.
pub fn generate_result_from_json(
    v: &Json,
    limits: &WireLimits,
) -> Result<GenerateResult, WireError> {
    let fingerprint = v
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| wire_err("fingerprint", "missing or not a string"))?
        .to_string();
    let mut served_from = v
        .get("served_from")
        .and_then(Json::as_str)
        .and_then(served_from_parse)
        .ok_or_else(|| wire_err("served_from", "missing or unknown outcome"))?;
    if let ServedFrom::Stale { drift } = &mut served_from {
        *drift = v
            .get("drift")
            .ok_or_else(|| wire_err("drift", "missing on a stale outcome"))?
            .as_f64()
            .ok_or_else(|| wire_err("drift", "expected a number"))?;
    }
    let raw = v
        .get("graphs")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("graphs", "missing or not an array"))?;
    let graphs = raw
        .iter()
        .map(|g| graph_from_json(g, limits))
        .collect::<Result<Vec<Graph>, WireError>>()?;
    Ok(GenerateResult { fingerprint, served_from, graphs })
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

fn drain_hist_to_json(hist: &[u64]) -> Json {
    Json::Arr(hist.iter().map(|&v| Json::U64(v)).collect())
}

fn shard_stats_to_json(s: &ShardStats) -> Json {
    obj(vec![
        ("queue_depth", Json::U64(s.queue_depth as u64)),
        ("admitted", Json::U64(s.admission.admitted)),
        ("rejected_full", Json::U64(s.admission.rejected_full)),
        ("shed_deadline", Json::U64(s.admission.shed_deadline)),
        ("drains", Json::U64(s.drains)),
        ("max_drain", Json::U64(s.max_drain as u64)),
        ("drained_jobs", Json::U64(s.drained_jobs)),
        ("batched_requests", Json::U64(s.batched_requests)),
        ("drain_width_hist", drain_hist_to_json(&s.drain_hist)),
        ("dedup_hits", Json::U64(s.dedup_hits)),
        ("dedup_inserts", Json::U64(s.dedup_inserts)),
        ("dedup_resident", Json::U64(s.dedup_resident as u64)),
        (
            "registry",
            obj(vec![
                ("requests", Json::U64(s.registry.requests)),
                ("cold_fits", Json::U64(s.registry.cold_fits)),
                ("memory_hits", Json::U64(s.registry.memory_hits)),
                ("checkpoint_loads", Json::U64(s.registry.checkpoint_loads)),
                ("evictions", Json::U64(s.registry.evictions)),
                ("spills", Json::U64(s.registry.spills)),
                ("stale_hits", Json::U64(s.registry.stale_hits)),
                ("delta_updates", Json::U64(s.registry.delta_updates)),
                ("drift_refits", Json::U64(s.registry.drift_refits)),
            ]),
        ),
    ])
}

/// Encodes a whole-server stats snapshot: per-shard counters, the
/// aggregate totals the load harness consumes, server-wide admission
/// counters, and the recent dropped-work ring.
pub fn stats_to_json(stats: &ServerStats) -> Json {
    let dropped = stats
        .dropped
        .iter()
        .map(|d| {
            obj(vec![
                ("tenant", Json::Str(d.tenant.as_str().into())),
                ("fingerprint", Json::Str(d.fingerprint.to_hex())),
                ("reason", Json::Str(d.reason.as_str().into())),
                ("queue_age_nanos", Json::U64(d.queue_age_nanos)),
            ])
        })
        .collect();
    obj(vec![
        ("shards", Json::Arr(stats.per_shard.iter().map(shard_stats_to_json).collect())),
        (
            "totals",
            obj(vec![
                ("requests", Json::U64(stats.requests())),
                ("fits", Json::U64(stats.fits())),
                ("dedup_hits", Json::U64(stats.dedup_hits())),
                ("drains", Json::U64(stats.drains())),
                ("queue_depth", Json::U64(stats.queue_depth() as u64)),
                ("max_drain", Json::U64(stats.max_drain() as u64)),
                ("drained_jobs", Json::U64(stats.drained_jobs())),
                ("batched_requests", Json::U64(stats.batched_requests())),
                ("mean_drain_width", Json::F64(stats.mean_drain_width())),
                ("drain_width_hist", drain_hist_to_json(&stats.drain_hist())),
            ]),
        ),
        (
            "admission",
            obj(vec![
                ("admitted", Json::U64(stats.admission.admitted)),
                ("rejected_full", Json::U64(stats.admission.rejected_full)),
                ("rejected_rate", Json::U64(stats.admission.rejected_rate)),
                ("shed_deadline", Json::U64(stats.admission.shed_deadline)),
                ("dropped_total", Json::U64(stats.admission.dropped_total)),
            ]),
        ),
        (
            "store",
            match &stats.store {
                Some(s) => obj(vec![
                    ("published", Json::U64(s.published)),
                    ("loads", Json::U64(s.loads)),
                    ("corrupt_quarantined", Json::U64(s.corrupt_quarantined)),
                    ("pruned_files", Json::U64(s.pruned_files)),
                    ("pruned_bytes", Json::U64(s.pruned_bytes)),
                    ("tmp_swept", Json::U64(s.tmp_swept)),
                    ("adopted", Json::U64(s.adopted)),
                    ("total_bytes", Json::U64(s.total_bytes)),
                    ("fingerprints", Json::U64(s.fingerprints)),
                    ("generations", Json::U64(s.generations)),
                ]),
                None => Json::Null,
            },
        ),
        ("dropped", Json::Arr(dropped)),
    ])
}

// ---------------------------------------------------------------------------
// Error objects
// ---------------------------------------------------------------------------

/// Builds a JSON-RPC error object: `{"code", "message", "data": {"kind"}}`.
pub fn error_object(code: i64, message: &str, kind: &str) -> Json {
    obj(vec![
        ("code", Json::I64(code)),
        ("message", Json::Str(message.into())),
        ("data", obj(vec![("kind", Json::Str(kind.into()))])),
    ])
}

/// The error object for a typed [`FairGenError`](fairgen_core::error::FairGenError), using the stable
/// [`codes`] table.
pub fn fairgen_error_object(e: &fairgen_core::error::FairGenError) -> Json {
    error_object(codes::wire_code(e), &e.to_string(), codes::kind_name(e))
}

/// Wraps a result or error object into the response envelope, echoing `id`.
pub fn response_envelope(id: &Json, body: Result<Json, Json>) -> Json {
    let (key, value) = match body {
        Ok(result) => ("result", result),
        Err(error) => ("error", error),
    };
    Json::Obj(vec![
        ("jsonrpc".to_string(), Json::Str("2.0".into())),
        ("id".to_string(), id.clone()),
        (key.to_string(), value),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)).collect();
        Graph::from_edges(n, &edges)
    }

    fn limits() -> WireLimits {
        WireLimits::default()
    }

    #[test]
    fn graph_round_trips() {
        for g in [ring(8), Graph::empty(3), Graph::from_edges(5, &[(0, 4), (1, 3)])] {
            let encoded = graph_to_json(&g).encode();
            let back = graph_from_json(&parse(encoded.as_bytes()).expect("json"), &limits())
                .expect("decode");
            assert_eq!(back, g);
        }
    }

    #[test]
    fn task_round_trips() {
        let task =
            TaskSpec::new(vec![(0, 1), (3, 0)], 2, Some(NodeSet::from_members(6, &[0, 2, 4])));
        let back =
            task_from_json(&parse(task_to_json(&task).encode().as_bytes()).unwrap(), &limits())
                .expect("decode");
        assert_eq!(back.labeled, task.labeled);
        assert_eq!(back.num_classes, task.num_classes);
        assert_eq!(
            back.protected.as_ref().map(|s| s.members().to_vec()),
            task.protected.as_ref().map(|s| s.members().to_vec()),
        );
        let unlabeled = TaskSpec::unlabeled();
        let back = task_from_json(
            &parse(task_to_json(&unlabeled).encode().as_bytes()).unwrap(),
            &limits(),
        )
        .expect("decode");
        assert!(back.protected.is_none());
        assert!(back.labeled.is_empty());
    }

    #[test]
    fn bad_graphs_are_typed_wire_errors() {
        for (text, field_prefix) in [
            (r#"{"edges": []}"#, "n"),
            (r#"{"n": 3}"#, "edges"),
            (r#"{"n": 3, "edges": [[0]]}"#, "edges[0]"),
            (r#"{"n": 3, "edges": [[0, 9]]}"#, "edges"),
            (r#"{"n": 3, "edges": [[0, -1]]}"#, "edges[0]"),
            (r#"{"n": 3, "edges": 7}"#, "edges"),
        ] {
            let v = parse(text.as_bytes()).expect("valid json");
            let err = graph_from_json(&v, &limits()).expect_err(text);
            assert!(err.field.starts_with(field_prefix), "{text}: {err}");
        }
    }

    #[test]
    fn oversized_scalars_are_rejected_before_any_allocation() {
        // Each of these drives an O(value) allocation if it reaches the
        // constructors; a u64::MAX value must die in decode with a typed
        // error, not abort the process.
        let huge = u64::MAX;
        let g = parse(format!(r#"{{"n": {huge}, "edges": []}}"#).as_bytes()).unwrap();
        let err = graph_from_json(&g, &limits()).expect_err("huge n");
        assert_eq!(err.field, "n", "{err}");

        let t = parse(
            format!(
                r#"{{"labeled": [], "num_classes": 0,
                     "protected": {{"universe": {huge}, "members": []}}}}"#
            )
            .as_bytes(),
        )
        .unwrap();
        let err = task_from_json(&t, &limits()).expect_err("huge universe");
        assert_eq!(err.field, "protected.universe", "{err}");

        let t = parse(
            format!(r#"{{"labeled": [], "num_classes": {huge}, "protected": null}}"#)
                .as_bytes(),
        )
        .unwrap();
        let err = task_from_json(&t, &limits()).expect_err("huge num_classes");
        assert_eq!(err.field, "num_classes", "{err}");

        // A tight edge cap trips on the edge-array length.
        let tight = WireLimits { max_edges: 1, ..limits() };
        let g = parse(br#"{"n": 4, "edges": [[0,1],[1,2]]}"#).unwrap();
        let err = graph_from_json(&g, &tight).expect_err("too many edges");
        assert_eq!(err.field, "edges", "{err}");
    }

    #[test]
    fn protected_member_outside_universe_is_rejected() {
        let v = parse(
            br#"{"labeled": [], "num_classes": 0,
                 "protected": {"universe": 3, "members": [5]}}"#,
        )
        .expect("json");
        let err = task_from_json(&v, &limits()).expect_err("member out of range");
        assert!(err.field.contains("members[0]"), "{err}");
    }

    #[test]
    fn envelope_validation() {
        let ok = parse(br#"{"jsonrpc":"2.0","id":3,"method":"stats"}"#).unwrap();
        let req = decode_envelope(&ok).expect("envelope");
        assert_eq!(req.method, "stats");
        assert_eq!(req.id, Json::U64(3));
        assert!(req.params.is_null());

        for bad in [
            r#"[1,2,3]"#,
            r#"{"jsonrpc":"1.0","method":"x"}"#,
            r#"{"jsonrpc":"2.0"}"#,
            r#"{"method": 7}"#,
            r#"{"method":"x","id":[1]}"#,
        ] {
            let v = parse(bad.as_bytes()).unwrap();
            assert!(decode_envelope(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn generate_params_round_trip() {
        let g = ring(5);
        let task = TaskSpec::unlabeled();
        for batch in [false, true] {
            let seeds = if batch { vec![1, 2, 3] } else { vec![9] };
            let params = encode_generate_params(&g, &task, 42, &seeds, batch);
            let back = decode_generate_params(
                &parse(params.encode().as_bytes()).unwrap(),
                batch,
                &limits(),
            )
            .expect("decode");
            assert_eq!(back.graph, g);
            assert_eq!(back.fit_seed, 42);
            assert_eq!(back.sample_seeds, seeds);
        }
    }

    #[test]
    fn served_from_names_round_trip() {
        for s in [
            ServedFrom::ColdFit,
            ServedFrom::Memory,
            ServedFrom::Checkpoint,
            ServedFrom::DedupCache,
        ] {
            assert_eq!(served_from_parse(served_from_str(s)), Some(s));
        }
        // A stale outcome's name drops the drift — the result object's
        // `drift` field carries it instead (tested below).
        assert_eq!(served_from_str(ServedFrom::Stale { drift: 0.25 }), "stale");
        assert_eq!(served_from_parse("stale"), Some(ServedFrom::Stale { drift: 0.0 }));
        assert_eq!(served_from_parse("warp_drive"), None);
    }

    #[test]
    fn stale_results_carry_drift_through_the_wire() {
        let response = GenerateResponse {
            fingerprint: fairgen_graph::FingerprintBuilder::new().add_u64(9).finish(),
            served_from: ServedFrom::Stale { drift: 0.0625 },
            graphs: vec![ring(4)],
        };
        let encoded = generate_result_to_json(&response).encode();
        let back =
            generate_result_from_json(&parse(encoded.as_bytes()).unwrap(), &limits()).unwrap();
        assert_eq!(back.served_from, ServedFrom::Stale { drift: 0.0625 });
        assert_eq!(back.graphs, response.graphs);

        // A stale outcome without its drift field is a schema error, not a
        // silent zero.
        let stripped = parse(
            br#"{"fingerprint": "00000000000000000000000000000000",
                 "served_from": "stale", "graphs": []}"#,
        )
        .unwrap();
        let err = generate_result_from_json(&stripped, &limits()).expect_err("missing drift");
        assert_eq!(err.field, "drift");
    }

    #[test]
    fn update_params_and_result_round_trip() {
        let g = ring(6);
        let task = TaskSpec::unlabeled();
        let mut delta = GraphDelta::empty();
        delta.insert.push((0, 3));
        delta.remove.push((1, 2));
        let params = encode_update_params(&g, &task, 7, &delta);
        let back = decode_update_params(&parse(params.encode().as_bytes()).unwrap(), &limits())
            .expect("decode");
        assert_eq!(back.graph, g);
        assert_eq!(back.fit_seed, 7);
        assert_eq!(back.delta.insert, delta.insert);
        assert_eq!(back.delta.remove, delta.remove);

        let outcome = UpdateOutcome {
            old_fingerprint: fairgen_graph::FingerprintBuilder::new().add_u64(1).finish(),
            new_fingerprint: fairgen_graph::FingerprintBuilder::new().add_u64(2).finish(),
            root_fingerprint: fairgen_graph::FingerprintBuilder::new().add_u64(3).finish(),
            drift: 0.5,
            refit: true,
        };
        let encoded = update_result_to_json(&outcome).encode();
        let back = update_result_from_json(&parse(encoded.as_bytes()).unwrap()).unwrap();
        assert_eq!(back.old_fingerprint, outcome.old_fingerprint.to_hex());
        assert_eq!(back.new_fingerprint, outcome.new_fingerprint.to_hex());
        assert_eq!(back.root_fingerprint, outcome.root_fingerprint.to_hex());
        assert_eq!(back.drift, 0.5);
        assert!(back.refit);

        // Absent delta lists decode as empty; an oversized one is bounded.
        let sparse = parse(
            br#"{"graph": {"n": 3, "edges": []},
                 "task": {"labeled": [], "num_classes": 0, "protected": null},
                 "fit_seed": 0, "delta": {}}"#,
        )
        .unwrap();
        let back = decode_update_params(&sparse, &limits()).expect("empty delta");
        assert!(back.delta.is_empty());
        let tight = WireLimits { max_edges: 0, ..limits() };
        let err = decode_update_params(
            &parse(
                br#"{"graph": {"n": 3, "edges": []},
                     "task": {"labeled": [], "num_classes": 0, "protected": null},
                     "fit_seed": 0, "delta": {"insert": [[0,1]]}}"#,
            )
            .unwrap(),
            &tight,
        )
        .expect_err("bounded");
        assert_eq!(err.field, "delta.insert");
    }
}
