//! A minimal vendored JSON encode/decode module.
//!
//! The build environment has no crates.io access (the same constraint that
//! produced `vendor/{rand,proptest,criterion}` and `fairgen-par`'s pool),
//! so the RPC layer carries its own JSON support: a [`Json`] value tree, a
//! strict recursive-descent parser with typed [`JsonError`]s and hard
//! resource limits, and a writer whose output the parser round-trips.
//!
//! Design points that matter for the wire format:
//!
//! * **Integers are lossless.** Seeds and node ids are `u64`/`u32`; an
//!   `f64`-only number type would silently corrupt seeds above 2⁵³. The
//!   parser classifies each number token: unsigned integral → [`Json::U64`],
//!   negative integral → [`Json::I64`], anything with a fraction or
//!   exponent → [`Json::F64`].
//! * **Malformed input is a typed error, never a panic.** Depth, string
//!   escapes, UTF-8, trailing garbage — every failure mode returns a
//!   [`JsonError`] with a byte offset (proptested in `tests/json_props.rs`).
//! * **No `Date`/locale/float-formatting surprises.** The writer uses
//!   Rust's shortest-round-trip `f64` formatting and emits `null` for
//!   non-finite floats (JSON has no NaN/Inf).

use std::fmt;

/// Maximum nesting depth the parser accepts — deep enough for any real
/// request, shallow enough that `[[[[…` cannot overflow the stack.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token (no sign, fraction, or exponent).
    U64(u64),
    /// A negative integer token.
    I64(i64),
    /// Any other number (fraction, exponent, or out of integer range).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (duplicate keys rejected by
    /// the parser).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (accepts `U64`, and non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64` (accepts `I64`, and in-range `U64`).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                out.push_str(&v.to_string());
            }
            Json::I64(v) => {
                out.push_str(&v.to_string());
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is shortest-round-trip; force a
                    // fraction/exponent marker so the reparse stays F64.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Infinity.
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a byte sequence failed to parse as JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Input ended inside a value.
    UnexpectedEnd,
    /// A byte that cannot start or continue the expected token.
    UnexpectedByte(u8),
    /// A number token that does not parse (`1e`, `-`, leading zeros…).
    BadNumber,
    /// A malformed string: bad escape, bad `\u` sequence, raw control
    /// character, or invalid UTF-8.
    BadString,
    /// Nesting beyond [`MAX_DEPTH`].
    TooDeep,
    /// Non-whitespace bytes after the top-level value.
    TrailingGarbage,
    /// The same key appeared twice in one object.
    DuplicateKey(String),
}

/// A typed JSON parse failure with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub kind: JsonErrorKind,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            JsonErrorKind::UnexpectedEnd => write!(f, "unexpected end of input"),
            JsonErrorKind::UnexpectedByte(b) => {
                write!(f, "unexpected byte 0x{b:02x} at offset {}", self.at)
            }
            JsonErrorKind::BadNumber => write!(f, "malformed number at offset {}", self.at),
            JsonErrorKind::BadString => write!(f, "malformed string at offset {}", self.at),
            JsonErrorKind::TooDeep => {
                write!(f, "nesting deeper than {MAX_DEPTH} at offset {}", self.at)
            }
            JsonErrorKind::TrailingGarbage => {
                write!(f, "trailing garbage after value at offset {}", self.at)
            }
            JsonErrorKind::DuplicateKey(k) => {
                write!(f, "duplicate object key {k:?} at offset {}", self.at)
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value from `input`; the whole slice must be the
/// value plus optional surrounding whitespace.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err(JsonErrorKind::TrailingGarbage));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: JsonErrorKind) -> JsonError {
        JsonError { kind, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(self.err(JsonErrorKind::UnexpectedByte(got))),
            None => Err(self.err(JsonErrorKind::UnexpectedEnd)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        if self.input.len() - self.pos >= bytes.len()
            && &self.input[self.pos..self.pos + bytes.len()] == bytes
        {
            self.pos += bytes.len();
            Ok(value)
        } else {
            match self.peek() {
                Some(b) => Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                None => Err(self.err(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(JsonErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(JsonErrorKind::UnexpectedEnd)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(JsonErrorKind::UnexpectedByte(b))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(b) => return Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(JsonErrorKind::DuplicateKey(key)));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                Some(b) => return Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err(JsonErrorKind::UnexpectedEnd)),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| self.err(JsonErrorKind::BadString));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(self.err(JsonErrorKind::UnexpectedEnd))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let c = self.unicode_escape()?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(self.err(JsonErrorKind::BadString)),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err(JsonErrorKind::BadString)),
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    /// Reads the 4 hex digits after a `\u`; handles UTF-16 surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xdc00..0xe000).contains(&lo) {
                        let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                        return char::from_u32(c).ok_or(self.err(JsonErrorKind::BadString));
                    }
                }
            }
            return Err(self.err(JsonErrorKind::BadString));
        }
        char::from_u32(hi).ok_or(self.err(JsonErrorKind::BadString))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or(self.err(JsonErrorKind::UnexpectedEnd))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err(JsonErrorKind::BadString)),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_digits = self.pos - int_start;
        if int_digits == 0 || (int_digits > 1 && self.input[int_start] == b'0') {
            return Err(JsonError { kind: JsonErrorKind::BadNumber, at: start });
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(JsonError { kind: JsonErrorKind::BadNumber, at: start });
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(JsonError { kind: JsonErrorKind::BadNumber, at: start });
            }
        }
        // The token is valid ASCII by construction.
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).expect("number token is ASCII");
        if integral {
            if neg {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        // Fraction, exponent, or out of 64-bit integer range.
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::F64(v)),
            Err(_) => Err(JsonError { kind: JsonErrorKind::BadNumber, at: start }),
        }
    }
}

/// Convenience constructor for an object literal.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::U64(0)),
            ("42", Json::U64(42)),
            ("-7", Json::I64(-7)),
            ("18446744073709551615", Json::U64(u64::MAX)),
            ("-9223372036854775808", Json::I64(i64::MIN)),
            ("1.5", Json::F64(1.5)),
            ("1e3", Json::F64(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            let parsed = parse(text.as_bytes()).expect(text);
            assert_eq!(parsed, value, "parsing {text}");
            assert_eq!(parse(parsed.encode().as_bytes()).expect(text), value);
        }
    }

    #[test]
    fn structures_round_trip() {
        let v = obj(vec![
            ("a", Json::Arr(vec![Json::U64(1), Json::Null, Json::Str("x\n\"y".into())])),
            ("b", obj(vec![("nested", Json::Bool(false))])),
            ("c", Json::F64(2.25)),
        ]);
        assert_eq!(parse(v.encode().as_bytes()).expect("round trip"), v);
    }

    #[test]
    fn big_seed_is_lossless() {
        let seed = u64::MAX - 1;
        let v = Json::U64(seed);
        let back = parse(v.encode().as_bytes()).expect("parse");
        assert_eq!(back.as_u64(), Some(seed), "u64 seeds must not go through f64");
    }

    #[test]
    fn unicode_escapes_decode() {
        // `\u00e9` = é; the surrogate pair `\ud83d\ude00` = 😀.
        assert_eq!(
            parse(br#""\u00e9\ud83d\ude00""#).expect("escapes"),
            Json::Str("é😀".into())
        );
        // Raw UTF-8 (not escaped) passes through too.
        assert_eq!(parse("\"é😀\"".as_bytes()).expect("utf8"), Json::Str("é😀".into()));
        // Lone high surrogate is malformed.
        assert!(matches!(parse(br#""\ud83d""#).unwrap_err().kind, JsonErrorKind::BadString));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for (text, kind) in [
            ("", JsonErrorKind::UnexpectedEnd),
            ("{", JsonErrorKind::UnexpectedEnd),
            ("[1,", JsonErrorKind::UnexpectedEnd),
            ("tru", JsonErrorKind::UnexpectedByte(b't')),
            ("01", JsonErrorKind::BadNumber),
            ("1e", JsonErrorKind::BadNumber),
            ("-", JsonErrorKind::BadNumber),
            ("\"\x01\"", JsonErrorKind::BadString),
            ("1 2", JsonErrorKind::TrailingGarbage),
            ("{\"a\":1,\"a\":2}", JsonErrorKind::DuplicateKey("a".into())),
        ] {
            let err = parse(text.as_bytes()).expect_err(text);
            assert_eq!(err.kind, kind, "for input {text:?}");
        }
    }

    #[test]
    fn invalid_utf8_in_string_is_rejected() {
        let input = [b'"', 0xff, 0xfe, b'"'];
        assert!(matches!(parse(&input).unwrap_err().kind, JsonErrorKind::BadString));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let mut deep = String::new();
        for _ in 0..(MAX_DEPTH + 8) {
            deep.push('[');
        }
        assert_eq!(parse(deep.as_bytes()).unwrap_err().kind, JsonErrorKind::TooDeep);
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
        assert_eq!(Json::F64(f64::INFINITY).encode(), "null");
    }
}
