//! The `/metrics` and `/healthz` view over [`ServerStats`]: every counter
//! the serving stack already keeps, rendered as properly-typed Prometheus
//! series, plus the sustained-window health sample the monitor consumes.
//!
//! Naming follows the Prometheus conventions: `fairgen_` prefix,
//! `_total` suffix on counters, base units (`_seconds`) on histograms.
//! Per-shard counters carry a `shard` label; server-level counters are
//! unlabeled. The family set is stable from the first scrape (zero-valued
//! series are still emitted), so dashboards never see labels appear
//! mid-flight.

use fairgen_obs::{CounterPoint, GaugePoint, HealthSample, HistogramPoint, MetricFamily};
use fairgen_serve::{ServerStats, ShardStats, DRAIN_HIST_BUCKETS};

/// The content type `/metrics` answers with — the Prometheus text
/// exposition format this module renders.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Upper bounds of the drain-width exposition buckets. The serve layer's
/// `drain_hist` buckets are `[1, 2, 3–4, 5–8, 9–16, 17+]`; the first five
/// map to `le` bounds 1, 2, 4, 8, 16 and the `17+` tail is the `+Inf`
/// remainder.
const DRAIN_BOUNDS: [f64; DRAIN_HIST_BUCKETS - 1] = [1.0, 2.0, 4.0, 8.0, 16.0];

fn shard_counter(
    name: &str,
    help: &str,
    stats: &ServerStats,
    get: impl Fn(&ShardStats) -> u64,
) -> MetricFamily {
    MetricFamily::Counter {
        name: name.into(),
        help: help.into(),
        points: stats
            .per_shard
            .iter()
            .enumerate()
            .map(|(id, s)| CounterPoint {
                labels: vec![("shard".into(), id.to_string())],
                value: get(s),
            })
            .collect(),
    }
}

fn shard_gauge(
    name: &str,
    help: &str,
    stats: &ServerStats,
    get: impl Fn(&ShardStats) -> f64,
) -> MetricFamily {
    MetricFamily::Gauge {
        name: name.into(),
        help: help.into(),
        points: stats
            .per_shard
            .iter()
            .enumerate()
            .map(|(id, s)| GaugePoint {
                labels: vec![("shard".into(), id.to_string())],
                value: get(s),
            })
            .collect(),
    }
}

/// Builds the full metric-family set for one stats snapshot.
pub fn metric_families(stats: &ServerStats) -> Vec<MetricFamily> {
    let mut families = vec![
        // Registry counters, per shard.
        shard_counter(
            "fairgen_registry_requests_total",
            "Generation requests served by the shard registry (dedup-cache answers excluded).",
            stats,
            |s| s.registry.requests,
        ),
        shard_counter(
            "fairgen_registry_cold_fits_total",
            "Models fitted from scratch.",
            stats,
            |s| s.registry.cold_fits,
        ),
        shard_counter(
            "fairgen_registry_memory_hits_total",
            "Requests served by a resident model.",
            stats,
            |s| s.registry.memory_hits,
        ),
        shard_counter(
            "fairgen_registry_checkpoint_loads_total",
            "Models warm-started from the checkpoint store.",
            stats,
            |s| s.registry.checkpoint_loads,
        ),
        shard_counter(
            "fairgen_registry_evictions_total",
            "Models evicted under the capacity budget.",
            stats,
            |s| s.registry.evictions,
        ),
        shard_counter(
            "fairgen_registry_spills_total",
            "Models spilled to the checkpoint store.",
            stats,
            |s| s.registry.spills,
        ),
        shard_counter(
            "fairgen_registry_stale_hits_total",
            "Requests served stale-but-bounded by a lineage model.",
            stats,
            |s| s.registry.stale_hits,
        ),
        shard_counter(
            "fairgen_registry_delta_updates_total",
            "Graph deltas applied.",
            stats,
            |s| s.registry.delta_updates,
        ),
        shard_counter(
            "fairgen_registry_drift_refits_total",
            "Refits triggered by drift-threshold crossings.",
            stats,
            |s| s.registry.drift_refits,
        ),
        // Dedup-cache counters and residency, per shard.
        shard_counter(
            "fairgen_dedup_hits_total",
            "Requests answered entirely from the dedup cache.",
            stats,
            |s| s.dedup_hits,
        ),
        shard_counter(
            "fairgen_dedup_inserts_total",
            "(fingerprint, gen_seed) pairs inserted into the dedup cache.",
            stats,
            |s| s.dedup_inserts,
        ),
        shard_gauge(
            "fairgen_dedup_resident",
            "Graphs currently resident in the dedup cache.",
            stats,
            |s| s.dedup_resident as f64,
        ),
        // Coalescing counters, per shard.
        shard_counter(
            "fairgen_drains_total",
            "Queue drains processed (each is one coalescing opportunity).",
            stats,
            |s| s.drains,
        ),
        shard_counter(
            "fairgen_drained_jobs_total",
            "Jobs taken across all drains (shed jobs included).",
            stats,
            |s| s.drained_jobs,
        ),
        shard_counter(
            "fairgen_batched_requests_total",
            "Requests served inside a coalesced group of two or more.",
            stats,
            |s| s.batched_requests,
        ),
        shard_gauge(
            "fairgen_queue_depth",
            "Jobs waiting in the shard queue at scrape time.",
            stats,
            |s| s.queue_depth as f64,
        ),
        shard_gauge(
            "fairgen_max_drain",
            "Largest number of requests taken in a single drain so far.",
            stats,
            |s| s.max_drain as f64,
        ),
        // Drain-width distribution, aggregated across shards: the serve
        // layer's fixed buckets re-expressed as a cumulative histogram.
        drain_width_family(stats),
        // Server-wide admission counters.
        MetricFamily::counter(
            "fairgen_admission_admitted_total",
            "Jobs accepted into a shard queue.",
            stats.admission.admitted,
        ),
        MetricFamily::counter(
            "fairgen_admission_rejected_full_total",
            "Submissions rejected with a full shard queue.",
            stats.admission.rejected_full,
        ),
        MetricFamily::counter(
            "fairgen_admission_rejected_rate_total",
            "Submissions rejected by a tenant's token bucket.",
            stats.admission.rejected_rate,
        ),
        MetricFamily::counter(
            "fairgen_admission_shed_deadline_total",
            "Queued jobs shed at drain time on an expired deadline.",
            stats.admission.shed_deadline,
        ),
        MetricFamily::counter(
            "fairgen_admission_dropped_total",
            "All refused or shed jobs (rejected_full + rejected_rate + shed_deadline).",
            stats.admission.dropped_total,
        ),
        // Per-stage serving latency.
        stats.latency.to_family(
            "fairgen_stage_latency_seconds",
            "Serving latency by stage: admission wait, queue wait, model invocation, total.",
        ),
    ];
    // The store families only exist when a checkpoint directory is
    // configured — absence of the whole family set (rather than zeros) is
    // the honest signal that there is no store.
    if let Some(store) = &stats.store {
        families.extend([
            MetricFamily::counter(
                "fairgen_store_published_total",
                "Model checkpoints published.",
                store.published,
            ),
            MetricFamily::counter(
                "fairgen_store_loads_total",
                "Checkpoints loaded.",
                store.loads,
            ),
            MetricFamily::counter(
                "fairgen_store_corrupt_quarantined_total",
                "Corrupt checkpoint files quarantined.",
                store.corrupt_quarantined,
            ),
            MetricFamily::counter(
                "fairgen_store_pruned_files_total",
                "Checkpoint files pruned by retention.",
                store.pruned_files,
            ),
            MetricFamily::counter(
                "fairgen_store_pruned_bytes_total",
                "Bytes reclaimed by retention pruning.",
                store.pruned_bytes,
            ),
            MetricFamily::counter(
                "fairgen_store_tmp_swept_total",
                "Orphaned temp files swept.",
                store.tmp_swept,
            ),
            MetricFamily::counter(
                "fairgen_store_adopted_total",
                "Pre-existing checkpoint files adopted at open.",
                store.adopted,
            ),
            MetricFamily::gauge(
                "fairgen_store_bytes",
                "Bytes currently on disk across all checkpoint generations.",
                store.total_bytes as f64,
            ),
            MetricFamily::gauge(
                "fairgen_store_fingerprints",
                "Distinct fingerprints with at least one stored generation.",
                store.fingerprints as f64,
            ),
            MetricFamily::gauge(
                "fairgen_store_generations",
                "Checkpoint generations currently retained.",
                store.generations as f64,
            ),
        ]);
    }
    families
}

/// The aggregate drain-width histogram: cumulative counts over the serve
/// layer's fixed buckets. `_sum` is total drained jobs, `_count` total
/// drains — so `_sum / _count` is the mean drain width the stats API
/// reports.
fn drain_width_family(stats: &ServerStats) -> MetricFamily {
    let hist = stats.drain_hist();
    let mut cumulative = 0u64;
    let buckets = DRAIN_BOUNDS
        .iter()
        .zip(&hist)
        .map(|(&bound, &n)| {
            cumulative += n;
            (bound, cumulative)
        })
        .collect();
    MetricFamily::Histogram {
        name: "fairgen_drain_width".into(),
        help: "Requests taken per queue drain, across all shards.".into(),
        points: vec![HistogramPoint {
            labels: Vec::new(),
            buckets,
            sum: stats.drained_jobs() as f64,
            count: stats.drains(),
        }],
    }
}

/// The health-monitor sample for one stats snapshot: instantaneous queue
/// depth plus the cumulative offered/dropped counters whose window deltas
/// drive the shed-rate threshold.
pub fn health_sample(stats: &ServerStats) -> HealthSample {
    HealthSample {
        queue_depth: stats.queue_depth() as u64,
        offered: stats.admission.admitted + stats.admission.dropped_total,
        dropped: stats.admission.dropped_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_obs::{parse, render};

    #[test]
    fn empty_server_stats_render_and_round_trip() {
        let stats = ServerStats {
            per_shard: vec![ShardStats::default(), ShardStats::default()],
            ..ServerStats::default()
        };
        let families = metric_families(&stats);
        let text = render(&families);
        let back = parse(&text).expect("parse own rendering");
        assert_eq!(back, families, "scrape→parse round-trip");
        // Stable label set: every per-shard family has both shards.
        assert!(text.contains("fairgen_dedup_hits_total{shard=\"0\"} 0"));
        assert!(text.contains("fairgen_dedup_hits_total{shard=\"1\"} 0"));
        // No store configured → no store families at all.
        assert!(!text.contains("fairgen_store_"));
    }

    #[test]
    fn drain_width_histogram_matches_the_stats_invariants() {
        let shard = ShardStats {
            drain_hist: [3, 2, 1, 1, 0, 1], // widths: 1,2,3–4,5–8,9–16,17+
            drains: 8,
            drained_jobs: 40,
            ..ShardStats::default()
        };
        let stats = ServerStats { per_shard: vec![shard], ..ServerStats::default() };
        let MetricFamily::Histogram { points, .. } = drain_width_family(&stats) else {
            panic!("drain width must be a histogram");
        };
        let p = &points[0];
        assert_eq!(p.count, 8, "count == drains");
        assert_eq!(p.sum, 40.0, "sum == drained_jobs");
        assert_eq!(
            p.buckets,
            vec![(1.0, 3), (2.0, 5), (4.0, 6), (8.0, 7), (16.0, 7)],
            "cumulative over the fixed bounds; 17+ remainder lands in +Inf"
        );
    }

    #[test]
    fn health_sample_obeys_the_offered_identity() {
        let mut stats = ServerStats::default();
        stats.admission.admitted = 90;
        stats.admission.rejected_full = 4;
        stats.admission.rejected_rate = 5;
        stats.admission.shed_deadline = 1;
        stats.admission.dropped_total = 10;
        let sample = health_sample(&stats);
        assert_eq!(sample.offered, 100, "offered = admitted + dropped");
        assert_eq!(sample.dropped, 10);
    }
}
