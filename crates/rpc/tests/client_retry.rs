//! Regression tests for the client's stale keep-alive handling and the
//! `Retry-After` surfacing on backpressure errors.
//!
//! The stale-connection bug: a server may close an idle keep-alive
//! connection between two calls (drain, restart, idle timeout), and the
//! old client died with a hard error on the very next request even though
//! nothing was wrong with the request itself. The fix reconnects and
//! resends exactly once when the connection is lost *before any response
//! bytes* — and must NOT resend when a response was cut off midway (the
//! server saw that request; a blind resend could double-apply an update).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_rpc::http::{read_request, read_response, write_response};
use fairgen_rpc::{codes, ClientError, HttpLimits, Json, RpcClient, RpcConfig, RpcServer};
use fairgen_serve::{AdmissionConfig, FairGenServer, RateConfig, ServerConfig};

fn ring(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n as usize, &edges)
}

/// Reads one JSON-RPC request off `stream` and answers it with a canned
/// `result`, echoing the request id. Returns the request body.
fn serve_one(stream: &mut TcpStream, close: bool) -> Vec<u8> {
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let request = read_request(&mut reader, &HttpLimits::default()).expect("request");
    let envelope = fairgen_rpc::json::parse(&request.body).expect("request json");
    let id = envelope.get("id").and_then(Json::as_u64).expect("request id");
    let body = format!(r#"{{"jsonrpc":"2.0","id":{id},"result":{{"ok":true}}}}"#);
    write_response(stream, 200, "OK", "application/json", body.as_bytes(), close)
        .expect("write response");
    request.body
}

/// The headline regression: the server serves one request per keep-alive
/// connection and then silently closes it. Every client call after the
/// first lands on a stale socket — and must transparently reconnect and
/// resend, so all calls succeed and the server sees one connection per
/// call with the right request replayed onto the fresh connection.
#[test]
fn stale_keepalive_connection_is_reconnected_and_resent() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    const CALLS: usize = 3;
    let server = thread::spawn(move || {
        let mut bodies = Vec::new();
        for _ in 0..CALLS {
            let (mut stream, _) = listener.accept().expect("accept");
            // Advertise keep-alive, then close anyway: the stale scenario.
            bodies.push(serve_one(&mut stream, false));
        }
        bodies
    });

    let mut client = RpcClient::connect(addr).expect("connect");
    for _ in 0..CALLS {
        let result = client.call("ping", Json::Obj(Vec::new())).expect("call survives");
        assert_eq!(result.get("ok"), Some(&Json::Bool(true)));
    }
    let bodies = server.join().expect("server thread");
    assert_eq!(bodies.len(), CALLS, "one connection per call after the first goes stale");
    for (i, body) in bodies.iter().enumerate() {
        let envelope = fairgen_rpc::json::parse(body).expect("replayed body");
        assert_eq!(
            envelope.get("id").and_then(Json::as_u64),
            Some(i as u64 + 1),
            "the resent request must be byte-for-byte the original (same id)"
        );
    }
}

/// The negative space of the fix: a connection that dies *mid-response*
/// is a hard error, not a retry — the request reached the server. The
/// probe connection proves the client never dialed back.
#[test]
fn mid_response_truncation_is_an_error_not_a_retry() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let (probe_tx, probe_rx) = mpsc::channel::<()>();
    let server = thread::spawn(move || {
        // Connection 1: read the request, declare a body, truncate it.
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        read_request(&mut reader, &HttpLimits::default()).expect("request");
        stream
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n{\"trunc")
            .expect("write truncated response");
        // Both halves (the stream and its reader clone) must drop for the
        // FIN to reach the client.
        drop(reader);
        drop(stream);
        // Connection 2 must be the main thread's probe. Had the client
        // retried, its resend would occupy this accept slot instead and
        // the probe below would never be answered.
        probe_rx.recv().expect("client settled before the probe dials");
        let (mut stream, _) = listener.accept().expect("accept probe");
        serve_one(&mut stream, true);
    });

    let mut client = RpcClient::connect(addr).expect("connect");
    match client.call("ping", Json::Obj(Vec::new())).expect_err("truncated response") {
        ClientError::Io(e) => {
            assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "mid-body close");
        }
        other => panic!("expected an I/O error, got {other:?}"),
    }
    probe_tx.send(()).expect("release probe");
    let mut probe = RpcClient::connect(addr).expect("probe connect");
    let result = probe.call("ping", Json::Obj(Vec::new())).expect("probe served");
    assert_eq!(result.get("ok"), Some(&Json::Bool(true)));
    server.join().expect("server thread");
}

/// A dead *first* connection (no keep-alive history at all) still gets
/// the one retry — and when the reconnect itself fails, the original
/// failure class surfaces instead of a hang or panic.
#[test]
fn reconnect_failure_surfaces_as_an_io_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = thread::spawn(move || {
        // Accept and immediately close: the client's first exchange sees
        // EOF. Then drop the listener so the reconnect is refused.
        let (stream, _) = listener.accept().expect("accept");
        drop(stream);
        drop(listener);
    });
    let mut client = RpcClient::connect(addr).expect("connect");
    server.join().expect("server thread");
    match client.call("ping", Json::Obj(Vec::new())).expect_err("nobody listening") {
        ClientError::Io(_) | ClientError::Http(_) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
}

fn spawn_limited(rate: RateConfig, rpc_cfg: RpcConfig) -> RpcServer {
    let cfg = ServerConfig {
        admission: AdmissionConfig { rate: Some(rate), ..AdmissionConfig::default() },
        ..ServerConfig::default()
    };
    let inner = FairGenServer::new(|| Box::new(ErGenerator), cfg).expect("inner server");
    RpcServer::serve(inner, rpc_cfg).expect("bind loopback")
}

/// 429s carry a `Retry-After` the client surfaces on
/// [`RpcErrorInfo::retry_after`]: derived from the token-bucket refill
/// rate when there is one, falling back to the configured default when
/// the bucket never refills.
#[test]
fn overload_errors_carry_retry_after() {
    // A refilling bucket: 2 tokens/sec → one token accrues in ≤ 1 s.
    let rpc = spawn_limited(
        RateConfig { burst: 1, tokens_per_sec: 2 },
        RpcConfig { retry_after: Duration::from_secs(7), ..RpcConfig::default() },
    );
    let (g, task) = (ring(10), TaskSpec::unlabeled());
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    client.set_tenant(Some("greedy"));
    client.generate(&g, &task, 0, 1).expect("burst token");
    match client.generate(&g, &task, 0, 2).expect_err("burst spent") {
        ClientError::Rpc(info) => {
            assert_eq!(info.code, codes::OVERLOADED);
            assert_eq!(
                info.retry_after,
                Some(1),
                "refill-derived hint: ceil(1 token / 2 per s)"
            );
        }
        other => panic!("expected overload, got {other:?}"),
    }

    // A never-refilling bucket: no honest refill hint exists, so the
    // configured default is advertised instead.
    let rpc = spawn_limited(
        RateConfig { burst: 1, tokens_per_sec: 0 },
        RpcConfig { retry_after: Duration::from_secs(7), ..RpcConfig::default() },
    );
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    client.set_tenant(Some("greedy"));
    client.generate(&g, &task, 0, 1).expect("burst token");
    match client.generate(&g, &task, 0, 2).expect_err("burst spent") {
        ClientError::Rpc(info) => {
            assert_eq!(info.code, codes::OVERLOADED);
            assert_eq!(info.retry_after, Some(7), "configured fallback");
        }
        other => panic!("expected overload, got {other:?}"),
    }
}

/// The connection-cap 503 straight off accept also advertises the
/// configured `Retry-After`.
#[test]
fn connection_cap_503_advertises_retry_after() {
    let inner = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())
        .expect("inner server");
    let cfg = RpcConfig {
        max_connections: 1,
        retry_after: Duration::from_secs(5),
        ..RpcConfig::default()
    };
    let rpc = RpcServer::serve(inner, cfg).expect("bind loopback");

    let mut first = RpcClient::connect(rpc.local_addr()).expect("connect");
    first.stats().expect("established connection serves");

    let second = TcpStream::connect(rpc.local_addr()).expect("connect");
    second.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut reader = std::io::BufReader::new(second.try_clone().expect("clone"));
    let resp = read_response(&mut reader, &HttpLimits::default()).expect("busy response");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("5"));
}

/// `connect` resolves the address once; an unresolvable name is an
/// immediate typed error, not a panic.
#[test]
fn unresolvable_address_is_a_typed_error() {
    let unreachable: SocketAddr = "127.0.0.1:1".parse().expect("addr");
    // Port 1 is (virtually always) closed: connect must fail cleanly.
    match RpcClient::connect(unreachable) {
        Err(ClientError::Io(_)) => {}
        Ok(_) => {} // Something actually listens on port 1 — fine, skip.
        Err(other) => panic!("expected an I/O error, got {other:?}"),
    }
}
