//! Admission control end-to-end over a real socket: typed 429/1016
//! rejections, tenant attribution (header and params), deadline sheds, the
//! stats surface, and the `Overloaded`-vs-`ServerClosed` distinction on
//! the wire.
//!
//! Rate limiting with `tokens_per_sec: 0` makes overload deterministic
//! over TCP — no gated workers or timing games needed: the bucket holds
//! exactly `burst` tokens forever, so the Nth+1 request from a tenant is
//! rejected no matter how the socket schedules.

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_rpc::wire::encode_generate_params;
use fairgen_rpc::{
    codes, handle_rpc_body, ClientError, Json, RpcClient, RpcConfig, RpcServer, WireLimits,
};
use fairgen_serve::{AdmissionConfig, FairGenServer, RateConfig, ServerConfig};

fn ring(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n as usize, &edges)
}

/// An RPC server whose admission layer hands each tenant `burst` tokens
/// and never refills: requests past the burst are rejected, forever.
fn spawn_limited(burst: u64) -> RpcServer {
    let cfg = ServerConfig {
        admission: AdmissionConfig {
            rate: Some(RateConfig { burst, tokens_per_sec: 0 }),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let inner = FairGenServer::new(|| Box::new(ErGenerator), cfg).expect("inner server");
    RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback")
}

fn expect_overloaded(err: ClientError, reason: &str) -> fairgen_rpc::RpcErrorInfo {
    match err {
        ClientError::Rpc(info) => {
            assert_eq!(info.code, codes::OVERLOADED, "wire code is pinned at 1016");
            assert_eq!(info.http_status, 429, "admission rejections travel as 429");
            assert_eq!(info.kind.as_deref(), Some("Overloaded"));
            assert!(info.retryable(), "overload is the retryable rejection");
            assert!(info.is_overloaded());
            assert!(
                info.message.contains(reason),
                "message {:?} must name the stable reason {reason:?}",
                info.message
            );
            info
        }
        other => panic!("expected a typed RPC overload error, got {other:?}"),
    }
}

/// A tenant that exhausts its budget gets exactly one typed 429/1016 per
/// excess request — and other tenants (named or anonymous) are untouched.
#[test]
fn rate_limited_tenant_gets_a_typed_429_and_nobody_else_does() {
    let rpc = spawn_limited(1);
    let (g, task) = (ring(12), TaskSpec::unlabeled());

    let mut greedy = RpcClient::connect(rpc.local_addr()).expect("connect");
    greedy.set_tenant(Some("greedy"));
    greedy.generate(&g, &task, 0, 1).expect("first request fits the burst");
    expect_overloaded(
        greedy.generate(&g, &task, 0, 2).expect_err("burst spent"),
        "rate_limited",
    );

    // The connection survives the rejection, and other buckets are full:
    // a different header tenant and the anonymous default both serve.
    greedy.set_tenant(Some("patient"));
    greedy.generate(&g, &task, 0, 3).expect("another tenant has its own bucket");
    greedy.set_tenant(None);
    greedy.generate(&g, &task, 0, 4).expect("the default tenant has its own bucket");
}

/// A `tenant` param inside the JSON-RPC body outranks the transport
/// header: with both present, the request bills the param tenant.
#[test]
fn params_tenant_takes_precedence_over_the_header() {
    let rpc = spawn_limited(1);
    let (g, task) = (ring(10), TaskSpec::unlabeled());
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    client.set_tenant(Some("header-t"));

    let with_param_tenant = |seed: u64| {
        let mut params = encode_generate_params(&g, &task, 0, &[seed], false);
        match &mut params {
            Json::Obj(fields) => {
                fields.push(("tenant".to_string(), Json::Str("param-t".into())))
            }
            other => panic!("generate params must be an object, got {other:?}"),
        }
        params
    };

    client.call("generate", with_param_tenant(1)).expect("bills param-t, which is full");
    expect_overloaded(
        client.call("generate", with_param_tenant(2)).expect_err("param-t is spent"),
        "rate_limited",
    );
    // If the header tenant had been billed, this would now be rejected.
    client.generate(&g, &task, 0, 3).expect("header-t still has its token");
}

/// Empty and oversized tenant labels are request faults (`INVALID_PARAMS`,
/// HTTP 400) — they never reach admission, and never create a bucket.
#[test]
fn bad_tenant_labels_are_invalid_params_not_overload() {
    let rpc = spawn_limited(1);
    let (g, task) = (ring(10), TaskSpec::unlabeled());
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");

    let with_tenant = |label: &str| {
        let mut params = encode_generate_params(&g, &task, 0, &[1], false);
        match &mut params {
            Json::Obj(fields) => fields.push(("tenant".to_string(), Json::Str(label.into()))),
            other => panic!("generate params must be an object, got {other:?}"),
        }
        params
    };

    for label in [String::new(), "x".repeat(WireLimits::default().max_tenant_bytes + 1)] {
        match client.call("generate", with_tenant(&label)).expect_err("bad label") {
            ClientError::Rpc(info) => {
                assert_eq!(info.code, codes::INVALID_PARAMS);
                assert_eq!(info.http_status, 400);
                assert!(!info.retryable(), "a bad label is a caller bug, not backpressure");
            }
            other => panic!("expected a typed params error, got {other:?}"),
        }
    }

    // Oversized header labels are rejected the same way.
    client.set_tenant(Some(&"h".repeat(WireLimits::default().max_tenant_bytes + 1)));
    match client.generate(&g, &task, 0, 1).expect_err("oversized header") {
        ClientError::Rpc(info) => assert_eq!(info.code, codes::INVALID_PARAMS),
        other => panic!("expected a typed params error, got {other:?}"),
    }
}

/// A zero queue deadline sheds every job at drain: the client still gets
/// exactly one answer — the typed `deadline_expired` overload — never a
/// hang or a dropped connection.
#[test]
fn deadline_shed_crosses_the_socket_as_a_typed_429() {
    let cfg = ServerConfig {
        admission: AdmissionConfig {
            queue_deadline: Some(std::time::Duration::ZERO),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let inner = FairGenServer::new(|| Box::new(ErGenerator), cfg).expect("inner server");
    let rpc = RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback");
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    let (g, task) = (ring(14), TaskSpec::unlabeled());

    expect_overloaded(
        client.generate(&g, &task, 0, 1).expect_err("always-expired deadline"),
        "deadline_expired",
    );
    // And again: the shed path keeps the connection serving.
    expect_overloaded(
        client.generate_batch(&g, &task, 0, &[2, 3]).expect_err("bulk sheds too"),
        "deadline_expired",
    );
}

/// The `stats` RPC surfaces the admission counters and the dropped ring,
/// with tenant attribution and stable reason strings.
#[test]
fn stats_rpc_surfaces_admission_counters_and_the_dropped_ring() {
    let rpc = spawn_limited(1);
    let (g, task) = (ring(12), TaskSpec::unlabeled());
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    client.set_tenant(Some("noisy"));
    client.generate(&g, &task, 0, 1).expect("burst");
    for seed in [2, 3] {
        let _ = client.generate(&g, &task, 0, seed).expect_err("over budget");
    }

    let stats = client.stats().expect("stats rpc");
    let admission = stats.get("admission").expect("admission block in stats");
    let field = |k: &str| admission.get(k).and_then(Json::as_u64).expect("counter");
    assert_eq!(field("admitted"), 1);
    assert_eq!(field("rejected_rate"), 2);
    assert_eq!(field("rejected_full"), 0);
    assert_eq!(field("shed_deadline"), 0);
    assert_eq!(field("dropped_total"), 2);

    let dropped = match stats.get("dropped").expect("dropped ring in stats") {
        Json::Arr(entries) => entries.clone(),
        other => panic!("dropped must be an array, got {other:?}"),
    };
    assert_eq!(dropped.len(), 2);
    for entry in &dropped {
        assert_eq!(entry.get("tenant").and_then(Json::as_str), Some("noisy"));
        assert_eq!(entry.get("reason").and_then(Json::as_str), Some("rate_limited"));
        assert!(entry.get("fingerprint").and_then(Json::as_str).is_some());
        assert!(entry.get("queue_age_nanos").and_then(Json::as_u64).is_some());
    }
}

/// The wire keeps the two rejection families distinct: an overloaded (but
/// open) server answers 429/1016, a draining server answers 503/1015 for
/// the *same* request body. Clients can tell "back off here" from "go
/// elsewhere".
#[test]
fn overloaded_and_server_closed_are_distinct_on_the_wire() {
    let cfg = ServerConfig {
        admission: AdmissionConfig {
            rate: Some(RateConfig { burst: 1, tokens_per_sec: 0 }),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = FairGenServer::new(|| Box::new(ErGenerator), cfg).expect("server");
    let (g, task) = (ring(10), TaskSpec::unlabeled());
    let wire = WireLimits::default();
    let body = |id: u64, seed: u64| {
        fairgen_rpc::json::obj(vec![
            ("jsonrpc", Json::Str("2.0".into())),
            ("id", Json::U64(id)),
            ("method", Json::Str("generate".into())),
            ("params", encode_generate_params(&g, &task, 0, &[seed], false)),
        ])
        .encode()
        .into_bytes()
    };

    // Spend the only token, then the same tenant is overloaded: 429/1016.
    let (status, _) = handle_rpc_body(&server, false, &body(1, 1), Some("t"), &wire);
    assert_eq!(status, 200);
    let (status, envelope) = handle_rpc_body(&server, false, &body(2, 2), Some("t"), &wire);
    assert_eq!(status, 429);
    let code = |e: &Json| e.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64);
    assert_eq!(code(&envelope), Some(codes::OVERLOADED));

    // The identical request against a draining server: 503/1015.
    let (status, envelope) = handle_rpc_body(&server, true, &body(3, 2), Some("t"), &wire);
    assert_eq!(status, 503);
    assert_eq!(code(&envelope), Some(codes::SERVER_CLOSED));
    assert_ne!(codes::OVERLOADED, codes::SERVER_CLOSED);
}
