//! Malformed-input property tests for the HTTP/1.1 request parser:
//! arbitrary byte soup, truncated requests, oversized bodies, and
//! non-UTF-8 headers must never panic, and every reportable failure maps
//! to a typed 4xx/5xx via [`HttpError::status`].

use std::io::Cursor;

use fairgen_rpc::http::{read_request, HttpError, HttpLimits};
use proptest::collection::vec;
use proptest::prelude::*;

fn limits() -> HttpLimits {
    HttpLimits { max_line_bytes: 256, max_headers: 8, max_body_bytes: 4096 }
}

/// Renders a well-formed POST request from fuzzed pieces.
fn render_request(target_seed: u64, header_count: usize, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!("POST /rpc{target_seed} HTTP/1.1\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    for i in 0..header_count {
        out.extend_from_slice(format!("X-Extra-{i}: value-{i}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..512)) {
        let result = read_request(&mut Cursor::new(bytes), &limits());
        // Whatever happened, a reportable error must carry a 4xx/5xx
        // status — `status()` only returns None for Eof/Timeout/Io.
        if let Err(err) = result {
            if let Some((status, _)) = err.status() {
                prop_assert!((400..=599).contains(&status));
            }
        }
    }

    #[test]
    fn valid_requests_round_trip(
        target_seed in any::<u64>(),
        extra_headers in 0usize..5,
        body in vec(any::<u8>(), 0..128),
    ) {
        let bytes = render_request(target_seed, extra_headers, &body);
        let req = read_request(&mut Cursor::new(bytes), &limits());
        let req = match req {
            Ok(req) => req,
            Err(err) => return Err(TestCaseError::Fail(format!("rejected: {err:?}"))),
        };
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.target, format!("/rpc{target_seed}"));
        prop_assert!(req.http11);
        prop_assert!(req.keep_alive());
        prop_assert_eq!(req.body, body);
        prop_assert_eq!(req.headers.len(), 1 + extra_headers);
    }

    #[test]
    fn truncations_give_typed_errors(
        target_seed in any::<u64>(),
        body in vec(any::<u8>(), 1..64),
        cut_seed in any::<u64>(),
    ) {
        let bytes = render_request(target_seed, 2, &body);
        // Strictly shorter than the full request: parsing must fail, and
        // fail with a typed error (Io from the truncated body read, or a
        // grammar error if the cut landed inside a line), never a panic.
        let cut = (cut_seed as usize) % bytes.len();
        let result = read_request(&mut Cursor::new(bytes[..cut].to_vec()), &limits());
        prop_assert!(result.is_err());
    }

    #[test]
    fn oversized_content_length_is_413(declared in 4097u64..u64::MAX) {
        let text = format!("POST /rpc HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let err = read_request(&mut Cursor::new(text.into_bytes()), &limits())
            .expect_err("body over limit");
        prop_assert!(matches!(err, HttpError::BodyTooLarge { declared: d } if d == declared));
        prop_assert_eq!(err.status().map(|(s, _)| s), Some(413));
    }

    #[test]
    fn bad_utf8_headers_are_400(byte in 0x80u8..=0xff) {
        // A lone continuation/invalid byte makes the header line non-UTF-8.
        let mut bytes = b"POST /rpc HTTP/1.1\r\nX-Bad: a".to_vec();
        bytes.push(byte);
        bytes.extend_from_slice(b"\r\n\r\n");
        let err = read_request(&mut Cursor::new(bytes), &limits()).expect_err("bad utf-8");
        // `é`'s lead byte may form valid UTF-8 with the following `\r`? No:
        // 0x80..=0xBF are bare continuations and 0xC0.. expects more bytes,
        // so with ASCII following this is always invalid.
        prop_assert!(matches!(err, HttpError::BadHeader));
        prop_assert_eq!(err.status().map(|(s, _)| s), Some(400));
    }

    #[test]
    fn header_floods_are_431(extra in 9usize..40) {
        let bytes = render_request(1, extra, b"");
        let err = read_request(&mut Cursor::new(bytes), &limits()).expect_err("too many");
        prop_assert!(matches!(err, HttpError::TooManyHeaders));
        prop_assert_eq!(err.status().map(|(s, _)| s), Some(431));
    }

    #[test]
    fn long_lines_are_431(pad in 257usize..600) {
        let mut bytes = b"POST /".to_vec();
        bytes.extend(std::iter::repeat_n(b'a', pad));
        bytes.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = read_request(&mut Cursor::new(bytes), &limits()).expect_err("long line");
        prop_assert!(matches!(err, HttpError::LineTooLong));
        prop_assert_eq!(err.status().map(|(s, _)| s), Some(431));
    }

    #[test]
    fn conflicting_content_lengths_are_400(a in 0u64..100, delta in 1u64..100) {
        let text = format!(
            "POST /rpc HTTP/1.1\r\nContent-Length: {a}\r\nContent-Length: {}\r\n\r\n",
            a + delta
        );
        let err = read_request(&mut Cursor::new(text.into_bytes()), &limits())
            .expect_err("conflicting lengths");
        prop_assert!(matches!(err, HttpError::BadContentLength));
        prop_assert_eq!(err.status().map(|(s, _)| s), Some(400));
    }
}
