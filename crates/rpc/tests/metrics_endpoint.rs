//! The observability endpoints over a real socket: `/metrics` must render
//! the same numbers the `stats` RPC reports (and parse back exactly), and
//! `/healthz` must flip 200→503 only on a *sustained* breach — driven by a
//! `ManualClock` so every transition is deterministic.

use std::sync::Arc;
use std::time::Duration;

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_obs::{parse, HealthPolicy, MetricFamily};
use fairgen_rpc::{
    metric_families, respond_http, Json, ObsState, RpcClient, RpcConfig, RpcServer,
    METRICS_CONTENT_TYPE,
};
use fairgen_serve::{
    AdmissionConfig, FairGenServer, ManualClock, RateConfig, ServedFrom, ServerConfig,
};

const SEC: u64 = 1_000_000_000;

fn ring(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n as usize, &edges)
}

fn counter_sum(families: &[MetricFamily], name: &str) -> u64 {
    match families.iter().find(|f| f.name() == name) {
        Some(MetricFamily::Counter { points, .. }) => points.iter().map(|p| p.value).sum(),
        other => panic!("expected counter family {name}, got {other:?}"),
    }
}

fn gauge_sum(families: &[MetricFamily], name: &str) -> f64 {
    match families.iter().find(|f| f.name() == name) {
        Some(MetricFamily::Gauge { points, .. }) => points.iter().map(|p| p.value).sum(),
        other => panic!("expected gauge family {name}, got {other:?}"),
    }
}

/// `GET /metrics` over TCP: correct content type, parseable exposition,
/// and values consistent with the `stats` RPC answered over the very same
/// connection.
#[test]
fn metrics_scrape_matches_the_stats_rpc() {
    let inner = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())
        .expect("inner server");
    let rpc = RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback");
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    let (g, task) = (ring(16), TaskSpec::unlabeled());

    let first = client.generate(&g, &task, 3, 5).expect("cold");
    assert_eq!(first.served_from, ServedFrom::ColdFit);
    let repeat = client.generate(&g, &task, 3, 5).expect("repeat");
    assert_eq!(repeat.served_from, ServedFrom::DedupCache);
    client.generate(&g, &task, 3, 6).expect("warm");

    let scrape = client.http_get("/metrics").expect("scrape");
    assert_eq!(scrape.status, 200);
    assert_eq!(scrape.header("content-type"), Some(METRICS_CONTENT_TYPE));
    let text = String::from_utf8(scrape.body).expect("utf-8 exposition");
    let families = parse(&text).expect("exposition parses");

    let stats = client.stats().expect("stats rpc");
    let totals = stats.get("totals").expect("totals");
    let total = |k: &str| totals.get(k).and_then(Json::as_u64).expect("counter");
    assert_eq!(counter_sum(&families, "fairgen_dedup_hits_total"), total("dedup_hits"));
    assert_eq!(counter_sum(&families, "fairgen_registry_cold_fits_total"), total("fits"));
    assert_eq!(counter_sum(&families, "fairgen_drains_total"), total("drains"));
    assert_eq!(gauge_sum(&families, "fairgen_queue_depth"), 0.0);
    let admission = stats.get("admission").expect("admission");
    assert_eq!(
        counter_sum(&families, "fairgen_admission_admitted_total"),
        admission.get("admitted").and_then(Json::as_u64).expect("admitted"),
    );
    // Three requests crossed admission, the queue, and the fulfill path;
    // only two invoked a model (the dedup hit is answered from cache).
    match families.iter().find(|f| f.name() == "fairgen_stage_latency_seconds") {
        Some(MetricFamily::Histogram { points, .. }) => {
            assert_eq!(points.len(), 4, "one series per stage");
            for p in points {
                let stage = &p.labels[0].1;
                let floor = if stage == "model_invocation" { 1 } else { 3 };
                assert!(p.count >= floor, "stage {stage} observed its events ({p:?})");
            }
        }
        other => panic!("expected the stage-latency histogram, got {other:?}"),
    }
}

/// The plain-GET router does not loosen the existing surface: POSTing the
/// metrics path is still 404, and a GET on the RPC path is still 405.
#[test]
fn observability_paths_do_not_leak_into_the_rpc_surface() {
    let inner = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())
        .expect("inner server");
    let rpc = RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback");
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");

    assert_eq!(client.http_get("/rpc").expect("GET /rpc").status, 405);
    // Method is checked before path (the pre-existing contract): any GET
    // outside the two observability paths is 405, and POSTing an
    // observability path is a plain 404 — the RPC surface did not widen.
    assert_eq!(client.http_get("/nope").expect("GET /nope").status, 405);
    let healthz = client.http_get("/healthz").expect("healthz");
    assert_eq!(healthz.status, 200);
    let body = fairgen_rpc::json::parse(&healthz.body).expect("healthz json");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
}

/// The sustained-window contract over the socket, on a manual clock:
/// one breached window is a spike (200), `sustain` consecutive breached
/// windows flip to 503 with a reason body and `Retry-After`, and one
/// clean window flips back to 200.
#[test]
fn healthz_flips_only_on_a_sustained_breach() {
    let clock = Arc::new(ManualClock::at(0));
    let server_cfg = ServerConfig {
        admission: AdmissionConfig {
            // One token per tenant, never refilled: rejections (and hence
            // the shed rate) are a pure function of the request sequence.
            rate: Some(RateConfig { burst: 1, tokens_per_sec: 0 }),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let rpc_cfg = RpcConfig {
        retry_after: Duration::from_secs(9),
        health: HealthPolicy {
            max_queue_depth: u64::MAX,
            max_shed_rate: 0.5,
            sustain: 2,
            min_window_nanos: SEC,
        },
        clock: clock.clone(),
        ..RpcConfig::default()
    };
    let inner = FairGenServer::new(|| Box::new(ErGenerator), server_cfg).expect("inner server");
    let rpc = RpcServer::serve(inner, rpc_cfg).expect("bind loopback");
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    let (g, task) = (ring(12), TaskSpec::unlabeled());

    let healthz = |client: &mut RpcClient| {
        let resp = client.http_get("/healthz").expect("healthz");
        let body = fairgen_rpc::json::parse(&resp.body).expect("healthz json");
        (resp, body)
    };

    // Scrape 1 baselines the counters: healthy by definition.
    let (resp, body) = healthz(&mut client);
    assert_eq!(resp.status, 200);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));

    // Window 1: 1 admitted + 2 rejected → shed rate 2/3 ≥ 0.5. Breached.
    client.set_tenant(Some("greedy"));
    client.generate(&g, &task, 0, 1).expect("burst token");
    for seed in [2, 3] {
        let _ = client.generate(&g, &task, 0, seed).expect_err("burst spent");
    }
    clock.advance(SEC);
    let (resp, body) = healthz(&mut client);
    assert_eq!(resp.status, 200, "one breached window is a spike, not an outage");
    assert_eq!(body.get("shed_rate_streak").and_then(Json::as_u64), Some(1));

    // A scrape storm inside the same window must not advance the streak.
    for _ in 0..5 {
        let (resp, body) = healthz(&mut client);
        assert_eq!(resp.status, 200);
        assert_eq!(body.get("shed_rate_streak").and_then(Json::as_u64), Some(1));
    }

    // Window 2: all rejections → the breach sustains → 503.
    for seed in [4, 5] {
        let _ = client.generate(&g, &task, 0, seed).expect_err("still spent");
    }
    clock.advance(SEC);
    let (resp, body) = healthz(&mut client);
    assert_eq!(resp.status, 503, "two consecutive breached windows flip the verdict");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("unhealthy"));
    assert_eq!(
        body.get("reason").and_then(Json::as_str),
        Some("shed_rate_sustained"),
        "the reason names which threshold sustained"
    );
    assert_eq!(resp.header("retry-after"), Some("9"));
    assert_eq!(resp.header("content-type"), Some("application/json"));

    // Recovery window: fresh tenants each spend their own burst token, so
    // everything offered is admitted. One clean window restores 200.
    for tenant in ["calm-a", "calm-b"] {
        client.set_tenant(Some(tenant));
        client.generate(&g, &task, 0, 1).expect("fresh bucket");
    }
    clock.advance(SEC);
    let (resp, body) = healthz(&mut client);
    assert_eq!(resp.status, 200, "one clean window restores health");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(body.get("shed_rate_streak").and_then(Json::as_u64), Some(0));
}

/// Routing during shutdown, without a socket: `/metrics` keeps serving a
/// draining server (operators want numbers mid-drain), while `/healthz`
/// reports `draining` with a 503 so balancers rotate the instance out.
#[test]
fn draining_servers_still_expose_metrics_but_fail_health() {
    let server =
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("server");
    let cfg = RpcConfig { retry_after: Duration::from_secs(4), ..RpcConfig::default() };
    let obs = ObsState::new(&cfg);
    let wire = cfg.wire;

    let metrics = respond_http(&server, &obs, true, "GET", "/metrics", b"", None, &wire);
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).expect("utf-8");
    let families = parse(&text).expect("parses");
    assert_eq!(families, metric_families(&server.stats()));

    let health = respond_http(&server, &obs, true, "GET", "/healthz", b"", None, &wire);
    assert_eq!(health.status, 503);
    assert_eq!(health.retry_after_secs, Some(4));
    let body = fairgen_rpc::json::parse(&health.body).expect("json");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("draining"));
    assert_eq!(body.get("reason").and_then(Json::as_str), Some("server_closing"));
}
