//! End-to-end loopback tests: a real [`RpcServer`] on an ephemeral port,
//! driven by real [`RpcClient`]s over TCP, byte-compared against the
//! in-process [`FairGenServer::handle`] oracle.

use std::io::Write;
use std::net::TcpStream;
use std::thread;

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_rpc::http::read_response;
use fairgen_rpc::{codes, ClientError, HttpLimits, Json, RpcClient, RpcConfig, RpcServer};
use fairgen_serve::{FairGenServer, RegistryConfig, ServedFrom, ServerConfig};

fn ring(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n as usize, &edges)
}

fn spawn_rpc(cfg: ServerConfig) -> RpcServer {
    let inner = FairGenServer::new(|| Box::new(ErGenerator), cfg).expect("inner server");
    RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fairgen-rpc-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Two concurrent socket clients, each a stream of distinct requests; every
/// response must be byte-equal to a fresh in-process oracle server fed the
/// same `(graph, task, fit_seed, sample_seed)` — the network layer may not
/// perturb a single byte of the payload.
#[test]
fn loopback_clients_match_the_in_process_oracle() {
    let rpc = spawn_rpc(ServerConfig::default());
    let addr = rpc.local_addr();
    let task = TaskSpec::unlabeled();

    let workers: Vec<_> = (0u32..2)
        .map(|w| {
            let task = task.clone();
            thread::spawn(move || {
                let mut client = RpcClient::connect(addr).expect("connect");
                (0u64..4)
                    .map(|i| {
                        let g = ring(8 + w * 4 + i as u32);
                        let fit_seed = 100 + u64::from(w);
                        let got = client
                            .generate(&g, &task, fit_seed, 7 + i)
                            .expect("generate over socket");
                        (g, fit_seed, 7 + i, got)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let served: Vec<_> =
        workers.into_iter().flat_map(|w| w.join().expect("client thread")).collect();

    // A completely separate in-process server is the oracle: same
    // generator, same seeds, zero shared state with the network path.
    let oracle =
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("oracle");
    for (g, fit_seed, sample_seed, got) in served {
        let want = oracle.handle(&g, &task, fit_seed, vec![sample_seed]).expect("oracle");
        assert_eq!(got.graphs, want.graphs, "socket and in-process graphs must be identical");
        assert_eq!(got.fingerprint, want.fingerprint.to_hex());
        assert_eq!(got.graphs.len(), 1);
    }
}

/// Repeating the exact same request must be answered from the dedup cache,
/// and the socket must carry that provenance faithfully.
#[test]
fn repeats_are_served_from_the_dedup_cache() {
    let rpc = spawn_rpc(ServerConfig::default());
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    let (g, task) = (ring(16), TaskSpec::unlabeled());

    let first = client.generate(&g, &task, 3, 5).expect("cold");
    assert_eq!(first.served_from, ServedFrom::ColdFit);
    let repeat = client.generate(&g, &task, 3, 5).expect("repeat");
    assert_eq!(repeat.served_from, ServedFrom::DedupCache);
    assert_eq!(repeat.graphs, first.graphs, "dedup must replay the identical graph");

    // Same model, new sample seed: warm model, fresh draw.
    let warm = client.generate(&g, &task, 3, 6).expect("warm");
    assert_eq!(warm.served_from, ServedFrom::Memory);

    let stats = client.stats().expect("stats");
    let totals = stats.get("totals").expect("totals");
    assert_eq!(totals.get("dedup_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(totals.get("fits").and_then(Json::as_u64), Some(1));
    assert_eq!(totals.get("queue_depth").and_then(Json::as_u64), Some(0));
    let drains = totals.get("drains").and_then(Json::as_u64).expect("drains");
    assert!(drains >= 1, "at least one drain served the requests");
    // Batching gauges: every drain carries ≥ 1 job, the histogram buckets
    // partition the drains, and the mean width is consistent with both.
    let drained_jobs = totals.get("drained_jobs").and_then(Json::as_u64).expect("drained_jobs");
    assert!(drained_jobs >= drains);
    let hist = totals.get("drain_width_hist").and_then(Json::as_arr).expect("drain_width_hist");
    let bucketed: u64 = hist.iter().map(|b| b.as_u64().expect("bucket")).sum();
    assert_eq!(bucketed, drains, "histogram buckets must partition the drains");
    let mean = totals.get("mean_drain_width").and_then(Json::as_f64).expect("mean_drain_width");
    assert!((mean - drained_jobs as f64 / drains as f64).abs() < 1e-9);
    assert!(totals.get("batched_requests").and_then(Json::as_u64).is_some());
}

/// `generate_batch` over the socket: one graph per seed, in order, matching
/// the equivalent sequence of single draws.
#[test]
fn batch_matches_singles() {
    let rpc = spawn_rpc(ServerConfig::default());
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    let (g, task) = (ring(12), TaskSpec::unlabeled());

    let batch = client.generate_batch(&g, &task, 9, &[1, 2, 3]).expect("batch");
    assert_eq!(batch.graphs.len(), 3);
    let oracle =
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("oracle");
    let want = oracle.handle(&g, &task, 9, vec![1, 2, 3]).expect("oracle");
    assert_eq!(batch.graphs, want.graphs);
}

/// A malformed JSON body gets a typed 400 with the stable parse-error code
/// — and because the HTTP framing was fine, the connection stays usable:
/// the next request on the same socket succeeds.
#[test]
fn malformed_json_is_typed_and_keeps_the_connection_alive() {
    let rpc = spawn_rpc(ServerConfig::default());
    let mut stream = TcpStream::connect(rpc.local_addr()).expect("connect");
    let limits = HttpLimits::default();

    let bad = b"{definitely not json";
    write!(stream, "POST /rpc HTTP/1.1\r\nContent-Length: {}\r\n\r\n", bad.len()).unwrap();
    stream.write_all(bad).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let resp = read_response(&mut reader, &limits).expect("error response");
    assert_eq!(resp.status, 400);
    let body = fairgen_rpc::json::parse(&resp.body).expect("error body is valid JSON");
    assert_eq!(
        body.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64),
        Some(codes::PARSE_ERROR),
    );

    // Good framing, bad payload → keep-alive: the same connection serves
    // the next (valid) request.
    let ok = br#"{"method":"stats","id":1}"#;
    write!(stream, "POST /rpc HTTP/1.1\r\nContent-Length: {}\r\n\r\n", ok.len()).unwrap();
    stream.write_all(ok).unwrap();
    let resp = read_response(&mut reader, &limits).expect("stats response");
    assert_eq!(resp.status, 200);
    let body = fairgen_rpc::json::parse(&resp.body).expect("stats body");
    assert!(body.get("result").and_then(|r| r.get("totals")).is_some());
}

/// Broken HTTP framing (a malformed request line) gets a typed 4xx JSON
/// error and then a clean close — the server never just drops the socket.
#[test]
fn malformed_http_framing_is_typed_then_closed() {
    let rpc = spawn_rpc(ServerConfig::default());
    let mut stream = TcpStream::connect(rpc.local_addr()).expect("connect");
    stream.write_all(b"COMPLETE NONSENSE\r\n\r\n").unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let resp = read_response(&mut reader, &HttpLimits::default()).expect("error response");
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("connection"), Some("close"));
    let body = fairgen_rpc::json::parse(&resp.body).expect("error body");
    assert_eq!(
        body.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64),
        Some(codes::HTTP_ERROR),
    );
    // And the server closes its half: the next read sees EOF.
    use std::io::Read;
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());
}

/// An unknown method surfaces client-side as a typed RPC error with the
/// reserved method-not-found code and a 404 transport status.
#[test]
fn unknown_method_is_a_typed_client_error() {
    let rpc = spawn_rpc(ServerConfig::default());
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    let err = client.call("warp", Json::Obj(Vec::new())).expect_err("unknown method");
    match err {
        ClientError::Rpc(info) => {
            assert_eq!(info.code, codes::METHOD_NOT_FOUND);
            assert_eq!(info.http_status, 404);
        }
        other => panic!("expected an RPC error, got {other:?}"),
    }
}

/// The accept loop stops handing out handler threads at `max_connections`:
/// an over-cap connection is answered with a typed 503 straight off accept
/// and closed, while established connections keep serving.
#[test]
fn connection_cap_rejects_with_typed_503() {
    let inner = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())
        .expect("inner server");
    let cfg = RpcConfig { max_connections: 1, ..RpcConfig::default() };
    let rpc = RpcServer::serve(inner, cfg).expect("bind loopback");

    let mut first = RpcClient::connect(rpc.local_addr()).expect("connect");
    first.stats().expect("established connection serves");

    let second = TcpStream::connect(rpc.local_addr()).expect("connect");
    second
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("set read timeout");
    let mut reader = std::io::BufReader::new(second.try_clone().expect("clone"));
    let resp = read_response(&mut reader, &HttpLimits::default()).expect("busy response");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("connection"), Some("close"));
    let body = fairgen_rpc::json::parse(&resp.body).expect("error body");
    assert_eq!(
        body.get("error").and_then(|e| e.get("code")).and_then(Json::as_i64),
        Some(codes::HTTP_ERROR),
    );
    first.stats().expect("first connection still serves");
}

/// A response carrying an error object with the wrong id is a desync
/// ([`ClientError::IdMismatch`]), not an error attributed to the current
/// call; a null id is accepted only alongside pre-dispatch error codes
/// (parse/envelope/HTTP failures, where the server never learned the id).
#[test]
fn error_ids_are_verified_before_rpc_attribution() {
    let cases = [
        // An application error echoing some other call's id: desync.
        (r#"{"jsonrpc":"2.0","id":999,"error":{"code":1010,"message":"x"}}"#, false),
        // An application error with a null id: also desync.
        (r#"{"jsonrpc":"2.0","id":null,"error":{"code":1010,"message":"x"}}"#, false),
        // A pre-dispatch parse error with a null id: legitimately ours.
        (r#"{"jsonrpc":"2.0","id":null,"error":{"code":-32700,"message":"x"}}"#, true),
    ];
    for (response_body, expect_rpc) in cases {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake server");
        let addr = listener.local_addr().expect("addr");
        let canned = response_body.to_string();
        let fake = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            fairgen_rpc::http::read_request(&mut reader, &HttpLimits::default())
                .expect("request");
            let mut writer = stream;
            fairgen_rpc::http::write_response(
                &mut writer,
                200,
                "OK",
                "application/json",
                canned.as_bytes(),
                true,
            )
            .expect("write canned response");
        });
        let mut client = RpcClient::connect(addr).expect("connect");
        let got = client.call("stats", Json::Obj(Vec::new()));
        match (expect_rpc, got) {
            (true, Err(ClientError::Rpc(info))) => assert_eq!(info.code, codes::PARSE_ERROR),
            (false, Err(ClientError::IdMismatch { sent: 1, .. })) => {}
            (want, other) => panic!("for {response_body}: want rpc={want}, got {other:?}"),
        }
        fake.join().expect("fake server thread");
    }
}

/// Graceful shutdown spills fitted models to the checkpoint directory; a
/// brand-new RpcServer over the same directory warm-starts — first request
/// is served from `checkpoint`, byte-identical to the pre-restart answer.
#[test]
fn shutdown_spills_and_a_new_server_warm_starts() {
    let dir = temp_dir("rpc-restart");
    let cfg = ServerConfig {
        shards: 2,
        registry: RegistryConfig {
            capacity: 4,
            checkpoint_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        },
        dedup_capacity: 0,
        ..ServerConfig::default()
    };
    let (g, task) = (ring(20), TaskSpec::unlabeled());

    let mut first = spawn_rpc(cfg.clone());
    let mut client = RpcClient::connect(first.local_addr()).expect("connect");
    let original = client.generate(&g, &task, 11, 4).expect("cold");
    assert_eq!(original.served_from, ServedFrom::ColdFit);
    drop(client);
    first.shutdown();

    let second = spawn_rpc(cfg);
    let mut client = RpcClient::connect(second.local_addr()).expect("reconnect");
    let revived = client.generate(&g, &task, 11, 4).expect("warm");
    assert_eq!(revived.served_from, ServedFrom::Checkpoint, "restart must not refit");
    assert_eq!(revived.graphs, original.graphs);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The evolving-graph path over the socket: `update_graph` under the
/// drift threshold answers `refit: false`, a follow-up `generate` for the
/// updated graph is served `stale` with the same drift and the *root*
/// model's bytes, and the delta counters surface in the `stats` method.
#[test]
fn update_graph_round_trips_and_serves_stale_over_the_socket() {
    use fairgen_graph::GraphDelta;

    let rpc = spawn_rpc(ServerConfig {
        shards: 2,
        registry: RegistryConfig { drift_threshold: 0.5, ..RegistryConfig::default() },
        ..ServerConfig::default()
    });
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");
    let (g, task) = (ring(40), TaskSpec::unlabeled());

    let base = client.generate(&g, &task, 3, 9).expect("base");
    assert_eq!(base.served_from, ServedFrom::ColdFit);

    let delta = GraphDelta { insert: vec![(0, 20)], remove: Vec::new() };
    let outcome = client.update_graph(&g, &task, 3, &delta).expect("update");
    assert!(!outcome.refit, "one chord must stay under a 0.5 threshold");
    assert!(outcome.drift > 0.0 && outcome.drift <= 0.5);
    assert_eq!(outcome.old_fingerprint, base.fingerprint);
    assert_eq!(outcome.root_fingerprint, base.fingerprint);
    assert_ne!(outcome.new_fingerprint, base.fingerprint);

    let updated = g.apply_delta(&delta).expect("apply");
    let stale = client.generate(&updated, &task, 3, 9).expect("stale");
    match stale.served_from {
        ServedFrom::Stale { drift } => assert_eq!(drift, outcome.drift),
        other => panic!("expected stale serving, got {other:?}"),
    }
    assert_eq!(stale.fingerprint, outcome.new_fingerprint);
    assert_eq!(stale.graphs, base.graphs, "stale serving must reuse the root model's bytes");

    let stats = client.stats().expect("stats");
    let shards = stats.get("shards").and_then(Json::as_arr).expect("shards");
    let sum = |key: &str| -> u64 {
        shards
            .iter()
            .map(|s| {
                s.get("registry").and_then(|r| r.get(key)).and_then(Json::as_u64).unwrap_or(0)
            })
            .sum()
    };
    assert_eq!(sum("delta_updates"), 1);
    assert_eq!(sum("stale_hits"), 1);
    assert_eq!(sum("drift_refits"), 0);
}
