//! Malformed-input property tests for the vendored JSON module: arbitrary
//! byte soup, truncations of valid documents, and random value trees must
//! never panic — every failure is a typed [`JsonError`] — and
//! encode → parse is the identity on every generatable value.

use fairgen_rpc::json::{parse, Json};
use proptest::collection::vec;
use proptest::prelude::*;

/// Builds a deterministic Json tree from a stream of draws — a hand-rolled
/// recursive strategy (the vendored proptest has no `prop_recursive`).
fn build_json(draws: &[u64], cursor: &mut usize, depth: usize) -> Json {
    let mut next = |m: u64| -> u64 {
        let v = draws.get(*cursor).copied().unwrap_or(7);
        *cursor += 1;
        v % m
    };
    let choice = if depth >= 4 { next(6) } else { next(8) };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(next(2) == 0),
        2 => Json::U64(draws.get(*cursor).copied().unwrap_or(3).wrapping_mul(0x9e37)),
        3 => Json::I64(-((next(1 << 40)) as i64)),
        4 => Json::F64((next(1 << 20) as f64) / 64.0 - 1024.0),
        5 => {
            let len = next(6) as usize;
            let mut s = String::new();
            for _ in 0..len {
                // A mix of ASCII, escapes, and multibyte UTF-8.
                s.push(match next(7) {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\u{1}',
                    4 => 'é',
                    5 => '😀',
                    _ => 'x',
                });
            }
            Json::Str(s)
        }
        6 => {
            let len = next(4) as usize;
            Json::Arr((0..len).map(|_| build_json(draws, cursor, depth + 1)).collect())
        }
        _ => {
            let len = next(4) as usize;
            Json::Obj(
                (0..len)
                    .map(|i| (format!("k{i}"), build_json(draws, cursor, depth + 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        // Ok or typed Err — reaching this line at all is the property.
        let _ = parse(&bytes);
    }

    #[test]
    fn encode_parse_round_trips(draws in vec(any::<u64>(), 1..64)) {
        let mut cursor = 0;
        let value = build_json(&draws, &mut cursor, 0);
        let encoded = value.encode();
        let back = parse(encoded.as_bytes());
        prop_assert_eq!(back.as_ref(), Ok(&value), "through {}", encoded);
    }

    #[test]
    fn truncations_of_valid_documents_never_panic(
        draws in vec(any::<u64>(), 1..48),
        cut_seed in any::<u64>(),
    ) {
        let mut cursor = 0;
        let value = build_json(&draws, &mut cursor, 0);
        let encoded = value.encode();
        let cut = (cut_seed as usize) % (encoded.len() + 1);
        // Cutting mid-UTF-8-sequence must also be handled (as bytes).
        let _ = parse(&encoded.as_bytes()[..cut]);
    }

    #[test]
    fn trailing_garbage_is_always_rejected(
        draws in vec(any::<u64>(), 1..32),
        garbage in 1u8..=127,
    ) {
        let mut cursor = 0;
        let value = build_json(&draws, &mut cursor, 0);
        let mut bytes = value.encode().into_bytes();
        // Any non-whitespace suffix byte must surface as an error (the
        // parser may diagnose it as garbage or as a malformed longer token,
        // e.g. `12` + `3` parses as a different number — so append a byte
        // that cannot extend any JSON value).
        if matches!(garbage, b' ' | b'\t' | b'\n' | b'\r') {
            prop_assume!(false);
        }
        bytes.push(b'#');
        bytes.push(garbage);
        prop_assert!(parse(&bytes).is_err());
    }

    #[test]
    fn u64_seeds_round_trip_losslessly(seed in any::<u64>()) {
        let encoded = Json::U64(seed).encode();
        let back = parse(encoded.as_bytes()).expect("integer");
        prop_assert_eq!(back.as_u64(), Some(seed));
    }
}
