//! Multiclass logistic regression (the Figure-6 base classifier).

use fairgen_nn::param::HasParams;
use fairgen_nn::{cross_entropy, log_softmax, Adam, Mat, Param};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A softmax classifier `ŷ = softmax(x W + b)` trained with Adam.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    w: Param,
    b: Param,
    classes: usize,
}

struct ParamsView<'a> {
    w: &'a mut Param,
    b: &'a mut Param,
}

impl HasParams for ParamsView<'_> {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(self.w);
        f(self.b);
    }
}

impl LogisticRegression {
    /// Fits on features `x` (`B × d`) and integer labels, deterministically
    /// in `seed`.
    ///
    /// # Panics
    ///
    /// Panics on empty input or label/row count mismatch.
    pub fn fit(
        x: &Mat,
        y: &[usize],
        classes: usize,
        epochs: usize,
        lr: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(x.rows(), y.len(), "label count mismatch");
        assert!(!y.is_empty(), "empty training set");
        assert!(classes > 0 && y.iter().all(|&c| c < classes), "bad labels");
        let d = x.cols();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Param::new(Mat::uniform(d, classes, 0.01, &mut rng));
        let mut b = Param::new(Mat::zeros(1, classes));
        let mut opt = Adam::new(lr);
        let batch = 32usize.min(y.len());
        let mut order: Vec<usize> = (0..y.len()).collect();
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(batch) {
                let bx = Mat::from_fn(chunk.len(), d, |r, c| x.get(chunk[r], c));
                let by: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                let logits = forward(&bx, &w.value, &b.value);
                let (_, dlogits) = cross_entropy(&logits, &by, None);
                // dW = xᵀ dlogits; db = colsum dlogits.
                w.grad.fill_zero();
                b.grad.fill_zero();
                w.grad.add_assign(&bx.matmul_tn(&dlogits));
                for r in 0..dlogits.rows() {
                    for c in 0..classes {
                        let cur = b.grad.get(0, c);
                        b.grad.set(0, c, cur + dlogits.get(r, c));
                    }
                }
                let mut view = ParamsView { w: &mut w, b: &mut b };
                opt.step(&mut view);
            }
        }
        LogisticRegression { w, b, classes }
    }

    /// Class log-probabilities for a feature batch.
    pub fn log_probs(&self, x: &Mat) -> Mat {
        log_softmax(&forward(x, &self.w.value, &self.b.value))
    }

    /// Hard predictions.
    pub fn predict(&self, x: &Mat) -> Vec<usize> {
        let lp = self.log_probs(x);
        (0..lp.rows())
            .map(|r| {
                (0..self.classes)
                    .max_by(|&a, &b| lp.get(r, a).partial_cmp(&lp.get(r, b)).expect("finite"))
                    .expect("at least one class")
            })
            .collect()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

fn forward(x: &Mat, w: &Mat, b: &Mat) -> Mat {
    let mut logits = x.matmul(w);
    for r in 0..logits.rows() {
        for c in 0..logits.cols() {
            let v = logits.get(r, c) + b.get(0, c);
            logits.set(r, c, v);
        }
    }
    logits
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 2-D blobs.
    fn blobs() -> (Mat, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let t = i as f64 * 0.1;
            xs.extend([2.0 + t.sin() * 0.3, 2.0 + t.cos() * 0.3]);
            ys.push(0);
            xs.extend([-2.0 + t.cos() * 0.3, -2.0 + t.sin() * 0.3]);
            ys.push(1);
        }
        (Mat::from_vec(60, 2, xs), ys)
    }

    #[test]
    fn fits_separable_data() {
        let (x, y) = blobs();
        let lr = LogisticRegression::fit(&x, &y, 2, 40, 0.05, 1);
        let preds = lr.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert_eq!(correct, 60, "must perfectly separate blobs");
    }

    #[test]
    fn log_probs_are_normalized() {
        let (x, y) = blobs();
        let lr = LogisticRegression::fit(&x, &y, 2, 10, 0.05, 2);
        let lp = lr.log_probs(&x);
        for r in 0..5 {
            let sum: f64 = (0..2).map(|c| lp.get(r, c).exp()).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn three_class_problem() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let j = (i % 7) as f64 * 0.05;
            xs.extend([3.0 + j, 0.0]);
            ys.push(0);
            xs.extend([-3.0 - j, 0.0]);
            ys.push(1);
            xs.extend([0.0, 3.0 + j]);
            ys.push(2);
        }
        let x = Mat::from_vec(60, 2, xs);
        let lr = LogisticRegression::fit(&x, &ys, 3, 60, 0.05, 3);
        let preds = lr.predict(&x);
        let correct = preds.iter().zip(&ys).filter(|(a, b)| a == b).count();
        assert!(correct >= 58, "only {correct}/60");
        assert_eq!(lr.classes(), 3);
    }

    #[test]
    fn deterministic_in_seed() {
        let (x, y) = blobs();
        let a = LogisticRegression::fit(&x, &y, 2, 5, 0.05, 9);
        let b = LogisticRegression::fit(&x, &y, 2, 5, 0.05, 9);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatched_labels_panic() {
        let x = Mat::zeros(3, 2);
        let _ = LogisticRegression::fit(&x, &[0, 1], 2, 1, 0.1, 0);
    }
}
