//! Downstream-task stack for the FairGen evaluation: node2vec embeddings,
//! logistic-regression node classification, data augmentation, and
//! low-dimensional projection.
//!
//! The paper's Figure 6 case study trains "a logistic regression classifier
//! … on the learned graph embedding of the original graph via node2vec",
//! then inserts 5% generator-proposed edges and retrains; Figures 1 and 9
//! visualize node embeddings in 2-D. This crate implements that pipeline:
//!
//! * [`node2vec`] — skip-gram with negative sampling over biased walks.
//! * [`logreg`] — multiclass logistic regression.
//! * [`eval`] — stratified k-fold splits and accuracy.
//! * [`augment`] — the +5%-edges augmentation procedure.
//! * [`projection`] — PCA to 2-D and the group-separation score that stands
//!   in for the paper's t-SNE plots (see DESIGN.md §1).

pub mod augment;
pub mod eval;
pub mod linkpred;
pub mod logreg;
pub mod node2vec;
pub mod projection;

pub use augment::augment_graph;
pub use eval::{accuracy, stratified_kfold};
pub use linkpred::{link_prediction_auc, roc_auc};
pub use logreg::LogisticRegression;
pub use node2vec::{Node2Vec, Node2VecConfig};
pub use projection::{group_separation, pca_2d};
