//! Evaluation utilities: stratified k-fold splits and accuracy.

use rand::Rng;

/// Classification accuracy.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn accuracy(predictions: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty evaluation set");
    let correct = predictions.iter().zip(truth).filter(|(a, b)| a == b).count();
    correct as f64 / truth.len() as f64
}

/// Stratified `k`-fold split (the paper uses ten folds, 90% train / 10%
/// test). Returns `k` `(train_indices, test_indices)` pairs; each class's
/// examples are distributed round-robin across folds after shuffling, so
/// every fold's test set has near-proportional class representation.
pub fn stratified_kfold<R: Rng + ?Sized>(
    labels: &[usize],
    k: usize,
    rng: &mut R,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    assert!(!labels.is_empty(), "empty label set");
    let classes = labels.iter().max().map_or(0, |&m| m + 1);
    let mut fold_of = vec![0usize; labels.len()];
    for c in 0..classes {
        let mut idx: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        for (j, &i) in idx.iter().enumerate() {
            fold_of[i] = j % k;
        }
    }
    (0..k)
        .map(|f| {
            let test: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] == f).collect();
            let train: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] != f).collect();
            (train, test)
        })
        .collect()
}

/// Mean and (population) standard deviation of a sample — the paper reports
/// "the accuracy score as well as the standard deviation".
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "empty sample");
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn folds_partition_everything() {
        let labels: Vec<usize> = (0..50).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let folds = stratified_kfold(&labels, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; 50];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 50);
            for &i in test {
                seen[i] += 1;
            }
            // No overlap.
            for &i in test {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each index tested exactly once");
    }

    #[test]
    fn folds_are_stratified() {
        // 40 of class 0, 10 of class 1: every fold's test set should contain
        // exactly 2 of class 1 under 5 folds.
        let labels: Vec<usize> =
            std::iter::repeat_n(0, 40).chain(std::iter::repeat_n(1, 10)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let folds = stratified_kfold(&labels, 5, &mut rng);
        for (_, test) in &folds {
            let minority = test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(minority, 2, "fold not stratified");
        }
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = stratified_kfold(&[0, 1], 1, &mut rng);
    }
}
