//! node2vec: skip-gram with negative sampling (SGNS) over biased walks
//! (Grover & Leskovec, KDD'16 — reference \[39\] of the paper).

use fairgen_graph::{Graph, NodeId};
use fairgen_nn::Mat;
use fairgen_walks::Node2VecWalker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// node2vec hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct Node2VecConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Walk length (nodes).
    pub walk_len: usize,
    /// Skip-gram window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD epochs over the walk corpus.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Return parameter `p`.
    pub p: f64,
    /// In-out parameter `q`.
    pub q: f64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            dim: 32,
            walks_per_node: 8,
            walk_len: 12,
            window: 4,
            negatives: 4,
            epochs: 2,
            lr: 0.025,
            p: 1.0,
            q: 1.0,
        }
    }
}

/// A trained node2vec embedding.
#[derive(Clone, Debug)]
pub struct Node2Vec {
    /// Input ("center") vectors, `n × dim` — the embedding consumers use.
    pub vectors: Mat,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Node2Vec {
    /// Trains node2vec on `g`, deterministically in `seed`.
    pub fn train(g: &Graph, cfg: &Node2VecConfig, seed: u64) -> Self {
        assert!(cfg.dim > 0 && cfg.walk_len >= 2 && cfg.window >= 1);
        let n = g.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 0.5 / cfg.dim as f64;
        let mut center = Mat::uniform(n, cfg.dim, scale, &mut rng);
        let mut context = Mat::uniform(n, cfg.dim, scale, &mut rng);

        // Walk corpus: `walks_per_node` walks from every non-isolated node.
        let walker = Node2VecWalker::new(cfg.p, cfg.q);
        let mut corpus: Vec<Vec<NodeId>> = Vec::with_capacity(n * cfg.walks_per_node);
        for _ in 0..cfg.walks_per_node {
            for v in 0..n as NodeId {
                if g.degree(v) > 0 {
                    corpus.push(walker.walk(g, v, cfg.walk_len, &mut rng));
                }
            }
        }

        // Degree^{3/4} negative-sampling table (word2vec convention).
        let mut table: Vec<NodeId> = Vec::new();
        for v in 0..n as NodeId {
            let w = (g.degree(v) as f64).powf(0.75).ceil() as usize;
            table.extend(std::iter::repeat_n(v, w.max(1)));
        }

        for _ in 0..cfg.epochs {
            for walk in corpus.iter() {
                let walk = walk.clone();
                for (i, &c) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window).min(walk.len() - 1);
                    // The window is an index interval around `i`; iterating
                    // positions keeps the `j == i` skip readable.
                    #[allow(clippy::needless_range_loop)]
                    for j in lo..=hi {
                        if j == i {
                            continue;
                        }
                        let target = walk[j];
                        sgns_update(
                            &mut center,
                            &mut context,
                            c as usize,
                            target as usize,
                            1.0,
                            cfg.lr,
                        );
                        for _ in 0..cfg.negatives {
                            let neg = table[rng.gen_range(0..table.len())];
                            if neg != target {
                                sgns_update(
                                    &mut center,
                                    &mut context,
                                    c as usize,
                                    neg as usize,
                                    0.0,
                                    cfg.lr,
                                );
                            }
                        }
                    }
                }
            }
        }
        Node2Vec { vectors: center }
    }

    /// The vector of one node.
    pub fn vector(&self, v: NodeId) -> &[f64] {
        self.vectors.row(v as usize)
    }

    /// Cosine similarity between two nodes' vectors.
    pub fn cosine(&self, a: NodeId, b: NodeId) -> f64 {
        let (va, vb) = (self.vector(a), self.vector(b));
        let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// One SGNS gradient step on the pair `(center c, context t)` with label 1
/// (positive) or 0 (negative).
fn sgns_update(center: &mut Mat, context: &mut Mat, c: usize, t: usize, label: f64, lr: f64) {
    let dim = center.cols();
    let dot: f64 = (0..dim).map(|k| center.get(c, k) * context.get(t, k)).sum();
    let g = (sigmoid(dot) - label) * lr;
    for k in 0..dim {
        let cc = center.get(c, k);
        let ct = context.get(t, k);
        center.set(c, k, cc - g * ct);
        context.set(t, k, ct - g * cc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_communities() -> Graph {
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                if (a < 5) == (b < 5) {
                    edges.push((a, b));
                }
            }
        }
        edges.push((0, 5));
        Graph::from_edges(10, &edges)
    }

    fn fast_cfg() -> Node2VecConfig {
        Node2VecConfig {
            dim: 12,
            walks_per_node: 6,
            walk_len: 8,
            epochs: 3,
            ..Default::default()
        }
    }

    #[test]
    fn vectors_shape() {
        let g = two_communities();
        let emb = Node2Vec::train(&g, &fast_cfg(), 1);
        assert_eq!(emb.vectors.rows(), 10);
        assert_eq!(emb.vectors.cols(), 12);
    }

    #[test]
    fn communities_cluster_in_embedding_space() {
        let g = two_communities();
        let emb = Node2Vec::train(&g, &fast_cfg(), 2);
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                let cos = emb.cosine(a, b);
                if (a < 5) == (b < 5) {
                    intra += cos;
                    n_intra += 1;
                } else {
                    inter += cos;
                    n_inter += 1;
                }
            }
        }
        let (intra, inter) = (intra / n_intra as f64, inter / n_inter as f64);
        assert!(intra > inter + 0.2, "communities not separated: intra {intra} inter {inter}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = two_communities();
        let a = Node2Vec::train(&g, &fast_cfg(), 7);
        let b = Node2Vec::train(&g, &fast_cfg(), 7);
        assert_eq!(a.vectors, b.vectors);
    }

    #[test]
    fn cosine_self_is_one() {
        let g = two_communities();
        let emb = Node2Vec::train(&g, &fast_cfg(), 3);
        assert!((emb.cosine(4, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_nodes_keep_init_vectors() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let emb = Node2Vec::train(&g, &fast_cfg(), 4);
        // Node 3 is isolated: no walks start there, vector stays near init.
        let norm: f64 = emb.vector(3).iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm < 0.5, "isolated vector drifted: {norm}");
    }
}
