//! Link-prediction evaluation: ROC-AUC of an embedding's inner-product
//! scores on held-out edges versus sampled non-edges.
//!
//! A second downstream task (besides Figure 6's node classification) for
//! judging generated/augmented graphs: good synthetic graphs should yield
//! embeddings that rank true edges above non-edges, *including* edges inside
//! the protected group.

use fairgen_graph::{Graph, NodeId, NodeSet};
use fairgen_nn::Mat;
use rand::Rng;

/// ROC-AUC from positive and negative score samples (probability that a
/// random positive outranks a random negative; ties count ½).
pub fn roc_auc(positives: &[f64], negatives: &[f64]) -> f64 {
    assert!(!positives.is_empty() && !negatives.is_empty(), "empty score sample");
    let mut wins = 0.0;
    for &p in positives {
        for &n in negatives {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (positives.len() * negatives.len()) as f64
}

/// Inner-product score of a node pair under an embedding matrix (`n × d`).
fn pair_score(emb: &Mat, u: NodeId, v: NodeId) -> f64 {
    emb.row(u as usize).iter().zip(emb.row(v as usize)).map(|(a, b)| a * b).sum()
}

/// Link-prediction AUC of `emb` on `g`: scores every edge (up to
/// `max_pairs`, subsampled deterministically) against an equal number of
/// uniformly sampled non-edges. Optionally restricts both samples to pairs
/// with at least one endpoint in `within` (protected-group link prediction).
pub fn link_prediction_auc<R: Rng + ?Sized>(
    g: &Graph,
    emb: &Mat,
    within: Option<&NodeSet>,
    max_pairs: usize,
    rng: &mut R,
) -> f64 {
    assert_eq!(emb.rows(), g.n(), "embedding row count mismatch");
    assert!(max_pairs > 0, "max_pairs must be positive");
    let touches = |u: NodeId, v: NodeId| -> bool {
        within.is_none_or(|s| s.contains(u) || s.contains(v))
    };
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().filter(|&(u, v)| touches(u, v)).collect();
    if edges.is_empty() {
        return f64::NAN;
    }
    // Deterministic subsample.
    for i in (1..edges.len()).rev() {
        edges.swap(i, rng.gen_range(0..=i));
    }
    edges.truncate(max_pairs);
    let positives: Vec<f64> = edges.iter().map(|&(u, v)| pair_score(emb, u, v)).collect();
    let mut negatives = Vec::with_capacity(positives.len());
    let n = g.n() as NodeId;
    let mut guard = 0usize;
    while negatives.len() < positives.len() && guard < 200 * positives.len() {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) && touches(u, v) {
            negatives.push(pair_score(emb, u, v));
        }
    }
    if negatives.is_empty() {
        return f64::NAN;
    }
    roc_auc(&positives, &negatives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node2vec::{Node2Vec, Node2VecConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auc_perfect_separation() {
        assert_eq!(roc_auc(&[2.0, 3.0], &[0.0, 1.0]), 1.0);
    }

    #[test]
    fn auc_reversed_is_zero() {
        assert_eq!(roc_auc(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn auc_ties_are_half() {
        assert_eq!(roc_auc(&[1.0], &[1.0]), 0.5);
    }

    #[test]
    fn node2vec_beats_chance_on_communities() {
        // Two dense communities: embeddings should rank intra-community
        // edges above random non-edges.
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                if (a < 5) == (b < 5) {
                    edges.push((a, b));
                }
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, &edges);
        let emb = Node2Vec::train(
            &g,
            &Node2VecConfig { dim: 12, walks_per_node: 8, epochs: 3, ..Default::default() },
            1,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let auc = link_prediction_auc(&g, &emb.vectors, None, 50, &mut rng);
        assert!(auc > 0.7, "AUC {auc}");
    }

    #[test]
    fn protected_restriction_filters_pairs() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let emb = Mat::from_fn(6, 4, |r, c| ((r * 4 + c) as f64 * 0.7).sin());
        let s = NodeSet::from_members(6, &[3, 4, 5]);
        let mut rng = StdRng::seed_from_u64(3);
        let auc = link_prediction_auc(&g, &emb, Some(&s), 10, &mut rng);
        assert!(auc.is_finite());
    }

    #[test]
    fn empty_restriction_yields_nan() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let emb = Mat::zeros(4, 2);
        let s = NodeSet::from_members(4, &[2, 3]); // no incident edges
        let mut rng = StdRng::seed_from_u64(4);
        assert!(link_prediction_auc(&g, &emb, Some(&s), 5, &mut rng).is_nan());
    }

    #[test]
    #[should_panic(expected = "empty score sample")]
    fn empty_scores_panic() {
        let _ = roc_auc(&[], &[1.0]);
    }
}
