//! Data augmentation: insert generator-proposed edges (Figure 6 protocol).

use fairgen_graph::{Graph, GraphBuilder};
use rand::Rng;

/// Inserts `extra_frac · m(g)` edges proposed by `generated` (edges of the
/// synthetic graph that are absent from `g`) into a copy of `g`. When the
/// generator proposes fewer novel edges than requested, all of them are
/// inserted. The paper uses `extra_frac = 0.05`.
///
/// # Panics
///
/// Panics if the node counts differ or `extra_frac` is negative.
pub fn augment_graph<R: Rng + ?Sized>(
    g: &Graph,
    generated: &Graph,
    extra_frac: f64,
    rng: &mut R,
) -> Graph {
    assert_eq!(g.n(), generated.n(), "node count mismatch");
    assert!(extra_frac >= 0.0, "extra_frac must be non-negative");
    let want = (extra_frac * g.m() as f64).round() as usize;
    let mut novel: Vec<(u32, u32)> =
        generated.edges().filter(|&(u, v)| !g.has_edge(u, v)).collect();
    // Uniformly subsample the novel proposals.
    for i in (1..novel.len()).rev() {
        novel.swap(i, rng.gen_range(0..=i));
    }
    novel.truncate(want);
    let mut b = GraphBuilder::with_capacity(g.n(), g.m() + novel.len());
    b.ensure_nodes(g.n());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for (u, v) in novel {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> Graph {
        Graph::from_edges(10, &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn adds_requested_fraction() {
        let g = base(); // 9 edges; 5% of 9 ≈ 0; use 50% = 4-5 edges
        let full = Graph::from_edges(
            10,
            &(0..10u32).flat_map(|a| ((a + 1)..10).map(move |b| (a, b))).collect::<Vec<_>>(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let aug = augment_graph(&g, &full, 0.5, &mut rng);
        assert_eq!(aug.m(), 9 + 5); // round(0.5 * 9) = 5 (round half up: 4.5 → 5)
                                    // Original edges all preserved.
        for (u, v) in g.edges() {
            assert!(aug.has_edge(u, v));
        }
    }

    #[test]
    fn caps_at_available_novel_edges() {
        let g = base();
        // Generated graph equals the original: no novel edges to add.
        let mut rng = StdRng::seed_from_u64(2);
        let aug = augment_graph(&g, &g, 0.5, &mut rng);
        assert_eq!(aug.m(), g.m());
    }

    #[test]
    fn zero_fraction_is_identity() {
        let g = base();
        let full = Graph::from_edges(10, &[(0, 5), (1, 7)]);
        let mut rng = StdRng::seed_from_u64(3);
        let aug = augment_graph(&g, &full, 0.0, &mut rng);
        assert_eq!(aug, g);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn mismatched_sizes_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = augment_graph(&base(), &Graph::empty(5), 0.1, &mut rng);
    }
}
