//! 2-D projection and the group-separation score — the quantitative stand-in
//! for the paper's t-SNE visualizations (Figures 1 and 9).

use fairgen_graph::NodeSet;
use fairgen_nn::Mat;

/// Projects row vectors onto their top two principal components
/// (power iteration with deflation). Returns an `n × 2` matrix.
pub fn pca_2d(x: &Mat) -> Mat {
    let (n, d) = (x.rows(), x.cols());
    assert!(n > 0 && d >= 2, "need at least two feature dims");
    // Center.
    let mut mean = vec![0.0; d];
    for r in 0..n {
        for (c, m) in mean.iter_mut().enumerate() {
            *m += x.get(r, c) / n as f64;
        }
    }
    let centered = Mat::from_fn(n, d, |r, c| x.get(r, c) - mean[c]);
    let comp1 = top_component(&centered, 0x1234);
    // Deflate: remove the comp1 direction.
    let deflated = Mat::from_fn(n, d, |r, c| {
        let proj: f64 = (0..d).map(|k| centered.get(r, k) * comp1[k]).sum();
        centered.get(r, c) - proj * comp1[c]
    });
    let comp2 = top_component(&deflated, 0x5678);
    Mat::from_fn(n, 2, |r, c| {
        let comp = if c == 0 { &comp1 } else { &comp2 };
        (0..d).map(|k| centered.get(r, k) * comp[k]).sum()
    })
}

/// Top eigenvector of `XᵀX` via ~60 power iterations.
fn top_component(x: &Mat, seed: u64) -> Vec<f64> {
    let d = x.cols();
    // Deterministic pseudo-random init.
    let mut v: Vec<f64> = (0..d)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
            ((h >> 16) & 0xffff) as f64 / 65535.0 - 0.5
        })
        .collect();
    normalize(&mut v);
    for _ in 0..60 {
        // w = Xᵀ (X v)
        let mut xv = vec![0.0; x.rows()];
        for (r, out) in xv.iter_mut().enumerate() {
            *out = (0..d).map(|c| x.get(r, c) * v[c]).sum();
        }
        let mut w = vec![0.0; d];
        for (r, &xvr) in xv.iter().enumerate() {
            for (c, wc) in w.iter_mut().enumerate() {
                *wc += x.get(r, c) * xvr;
            }
        }
        if normalize(&mut w) < 1e-12 {
            break;
        }
        v = w;
    }
    v
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Group-separation score of an embedding: the distance between the two
/// group centroids divided by the mean within-group distance to the own
/// centroid. Higher ⇒ the protected group is more clearly preserved as its
/// own region of the embedding space; under representation disparity this
/// score collapses ("the nodes from the protected group and unprotected
/// group get mixed together", Figure 1).
///
/// Returns 0.0 when either group is empty.
pub fn group_separation(embedding: &Mat, protected: &NodeSet) -> f64 {
    let n = embedding.rows();
    assert_eq!(n, protected.universe(), "universe mismatch");
    let d = embedding.cols();
    let plus: Vec<usize> = protected.members().iter().map(|&v| v as usize).collect();
    let minus: Vec<usize> =
        protected.complement().members().iter().map(|&v| v as usize).collect();
    if plus.is_empty() || minus.is_empty() {
        return 0.0;
    }
    let centroid = |idx: &[usize]| -> Vec<f64> {
        let mut c = vec![0.0; d];
        for &i in idx {
            for (k, ck) in c.iter_mut().enumerate() {
                *ck += embedding.get(i, k) / idx.len() as f64;
            }
        }
        c
    };
    let cp = centroid(&plus);
    let cm = centroid(&minus);
    let between: f64 = cp.iter().zip(&cm).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let spread = |idx: &[usize], c: &[f64]| -> f64 {
        idx.iter()
            .map(|&i| (0..d).map(|k| (embedding.get(i, k) - c[k]).powi(2)).sum::<f64>().sqrt())
            .sum::<f64>()
            / idx.len() as f64
    };
    let within = 0.5 * (spread(&plus, &cp) + spread(&minus, &cm));
    if within < 1e-12 {
        return if between < 1e-12 { 0.0 } else { f64::INFINITY };
    }
    between / within
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pca_projects_onto_spread_direction() {
        // Points along the x-axis with tiny y noise: PC1 ≈ x-axis.
        let x = Mat::from_fn(20, 3, |r, c| match c {
            0 => r as f64,
            1 => (r % 2) as f64 * 0.01,
            _ => 0.0,
        });
        let p = pca_2d(&x);
        assert_eq!((p.rows(), p.cols()), (20, 2));
        // The first component must order points like their x coordinate
        // (up to global sign).
        let d0 = p.get(19, 0) - p.get(0, 0);
        let spread1: f64 = (0..20).map(|r| p.get(r, 0).abs()).sum();
        let spread2: f64 = (0..20).map(|r| p.get(r, 1).abs()).sum();
        assert!(d0.abs() > 10.0);
        assert!(spread1 > 10.0 * spread2, "PC1 must dominate: {spread1} vs {spread2}");
    }

    #[test]
    fn separation_high_for_distinct_clusters() {
        let emb = Mat::from_fn(20, 2, |r, _| if r < 10 { 0.0 } else { 10.0 });
        let s = NodeSet::from_members(20, &(0..10).collect::<Vec<_>>());
        let sep = group_separation(&emb, &s);
        assert!(sep.is_infinite() || sep > 100.0, "sep = {sep}");
    }

    #[test]
    fn separation_low_for_mixed_groups() {
        // Interleaved identical distributions.
        let emb = Mat::from_fn(20, 2, |r, c| ((r * 7 + c * 3) % 5) as f64);
        let s = NodeSet::from_members(
            20,
            &(0..20).step_by(2).map(|v| v as u32).collect::<Vec<_>>(),
        );
        let sep = group_separation(&emb, &s);
        assert!(sep < 1.0, "sep = {sep}");
    }

    #[test]
    fn separation_orders_cluster_quality() {
        let make = |gap: f64| {
            Mat::from_fn(20, 2, |r, c| {
                let base = if r < 10 { 0.0 } else { gap };
                base + ((r * 3 + c) % 4) as f64 * 0.5
            })
        };
        let s = NodeSet::from_members(20, &(0..10).collect::<Vec<_>>());
        let tight = group_separation(&make(10.0), &s);
        let loose = group_separation(&make(2.0), &s);
        assert!(tight > loose);
    }

    #[test]
    fn empty_group_returns_zero() {
        let emb = Mat::zeros(4, 2);
        assert_eq!(group_separation(&emb, &NodeSet::empty(4)), 0.0);
        assert_eq!(group_separation(&emb, &NodeSet::full(4)), 0.0);
    }
}
