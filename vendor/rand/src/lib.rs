//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact API subset the workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`] — with the
//! same call-site syntax as `rand 0.8`. The generator behind [`rngs::StdRng`]
//! is xoshiro256** seeded through SplitMix64: deterministic, fast, and
//! statistically strong enough for every estimator in this repository.
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for `StdRng`),
//! so seeds produce different — but still reproducible — sequences. Swap
//! this crate for the real one by deleting `vendor/rand` and pointing the
//! workspace manifests at crates.io; no call site changes.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the unit interval / full bit range by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over half-open and inclusive ranges.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Widening to u128 keeps the span arithmetic overflow-free
                // for every primitive width, including u64/i64 extremes.
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty range");
                // Multiply-shift bounded sampling (Lemire); the bias over a
                // u64 input is < span / 2^64 and irrelevant here.
                let x = rng.next_u64() as u128;
                let offset = (x * span) >> 64;
                (lo + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from an empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the type's standard distribution (`f64`/`f32` uniform
    /// in `[0, 1)`, integers over the full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// A generator with its state derived from `seed` via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman/Vigna),
    /// seeded through SplitMix64. Not the upstream ChaCha12 — streams
    /// differ from crates.io `rand`, determinism per seed is identical.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Everything a typical call site imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.gen_range(-10..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn integer_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((4000..6000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice in order");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..4)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!(x < 4);
        let slice: &mut [u32] = &mut [1, 2, 3];
        slice.shuffle(&mut rng);
        assert!(slice.choose(&mut rng).is_some());
    }
}
