//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], the [`proptest!`] macro, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: failing inputs are *not* shrunk (the failing
//! case is printed as-is), and case generation is deterministic per test
//! name so CI runs are reproducible. Swap in the real crate by deleting
//! `vendor/proptest`; no call site changes.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name, so every run explores the
    /// same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        let span = (hi - lo + 1) as u128;
        lo + (((self.next_u64() as u128 * span) >> 64) as usize)
    }
}

/// Outcome of one generated case inside [`proptest!`].
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it.
    Reject,
    /// `prop_assert!`-style failure — abort the test.
    Fail(String),
}

/// Runner configuration; only `cases` is meaningful in this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy that feeds each value into `f` and draws from the
    /// strategy `f` returns (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types uniformly samplable from a range strategy.
pub trait RangeValue: PartialOrd + Copy {
    /// Uniform in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty range strategy");
                (lo_w + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_value_float!(f32, f64);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end, false)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Types with a default "anything" strategy, see [`any`].
pub trait ArbitraryValue: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, spanning several magnitudes.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`fn@vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.index(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values with a length drawn
    /// from `size` (a `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Everything a property test file imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cfg.cases.saturating_mul(20).max(20);
                while __accepted < __cfg.cases {
                    if __attempts >= __max_attempts {
                        panic!(
                            "proptest '{}': too many rejected cases ({} attempts, {} accepted)",
                            stringify!($name), __attempts, __accepted
                        );
                    }
                    __attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __accepted += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest '{}' case {} failed: {}",
                                   stringify!($name), __accepted + 1, msg);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (does not count toward `cases`) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("unit");
        for _ in 0..500 {
            let x = crate::Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = crate::Strategy::generate(&(0.5f64..=2.0), &mut rng);
            assert!((0.5..=2.0).contains(&y));
            let v =
                crate::Strategy::generate(&crate::collection::vec(0u32..5, 2..=4), &mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..6)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v)));
        let mut rng = crate::TestRng::deterministic("flat");
        for _ in 0..200 {
            let (n, v) = crate::Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&e| e < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(x in 0usize..100, flag in any::<bool>()) {
            prop_assume!(x != 50);
            prop_assert!(x < 100, "x = {}", x);
            prop_assert_eq!(x, x);
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u32..4) {
            prop_assert!(x < 4);
        }
    }
}
