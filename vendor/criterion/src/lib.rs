//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `iter` / `iter_batched`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring with plain
//! `std::time::Instant` and printing mean / min per benchmark. No
//! statistical analysis, HTML reports, or outlier rejection; swap in the
//! real crate by deleting `vendor/criterion`.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; all variants behave identically in
/// this stand-in (setup runs once per measured batch, untimed).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small routine inputs.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for parameterized benchmarks within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean/min nanoseconds per iteration, filled by `iter`-style calls.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `routine`, recording mean and min nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let ns = start.elapsed().as_nanos() as f64;
            total += ns;
            min = min.min(ns);
        }
        self.result = Some((total / self.samples as f64, min));
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let ns = start.elapsed().as_nanos() as f64;
            total += ns;
            min = min.min(ns);
        }
        self.result = Some((total / self.samples as f64, min));
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this stand-in times a fixed iteration
    /// count instead of a wall-clock budget.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; warm-up is one untimed call.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { parent: self, sample_size: None }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { samples, result: None };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            println!("{name:<40} mean {:>12}   min {:>12}", human(mean), human(min));
        }
        None => println!("{name:<40} (no measurement recorded)"),
    }
}

/// A set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.parent.sample_size)
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("  {name}"), self.samples(), &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.samples();
        let mut b = Bencher { samples, result: None };
        f(&mut b, input);
        match b.result {
            Some((mean, min)) => {
                println!("  {:<38} mean {:>12}   min {:>12}", id.id, human(mean), human(min))
            }
            None => println!("  {:<38} (no measurement recorded)", id.id),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("count", |b| {
            b.iter(|| ran = ran.wrapping_add(1));
        });
        assert!(ran >= 3);
    }

    #[test]
    fn groups_and_batched_iter_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("vec_sum", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::from_parameter(42), &42usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
