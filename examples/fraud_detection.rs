//! Rare-category detection via data augmentation — the paper's Figure-6
//! case study in a fraud-flavored setting: an institute has an interaction
//! network with few confirmed labels; FairGen proposes 5% additional edges,
//! the analyst re-embeds the augmented graph with node2vec and retrains a
//! logistic-regression detector, and accuracy improves over no augmentation.
//!
//! Run with: `cargo run -p fairgen-suite --release --example fraud_detection`

use fairgen_core::{FairGen, FairGenConfig, TaskSpec};
use fairgen_data::Dataset;
use fairgen_embed::eval::mean_std;
use fairgen_embed::{
    accuracy, augment_graph, stratified_kfold, LogisticRegression, Node2Vec, Node2VecConfig,
};
use fairgen_graph::Graph;
use fairgen_nn::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluate(g: &Graph, labels: &[usize], classes: usize, seed: u64) -> (f64, f64) {
    let emb = Node2Vec::train(
        g,
        &Node2VecConfig { dim: 32, walks_per_node: 6, epochs: 2, ..Default::default() },
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
    let mut accs = Vec::new();
    for (train, test) in stratified_kfold(labels, 10, &mut rng) {
        let xtr =
            Mat::from_fn(train.len(), emb.vectors.cols(), |r, c| emb.vectors.get(train[r], c));
        let ytr: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let clf = LogisticRegression::fit(&xtr, &ytr, classes, 40, 0.05, seed);
        let xte =
            Mat::from_fn(test.len(), emb.vectors.cols(), |r, c| emb.vectors.get(test[r], c));
        let yte: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        accs.push(accuracy(&clf.predict(&xte), &yte));
    }
    mean_std(&accs)
}

fn main() {
    // The interaction network: ACM-shaped, 9 transaction categories, the
    // "rare" category doubling as the protected group.
    let lg = Dataset::Acm.generate(11);
    let labels = lg.labels.clone().expect("ACM is labeled");
    println!(
        "interaction network: n={}, m={}, {} categories, rare segment |S+|={}",
        lg.graph.n(),
        lg.graph.m(),
        lg.num_classes,
        lg.protected.as_ref().map_or(0, |s| s.len())
    );

    // Baseline detector: node2vec + logistic regression on the raw graph.
    println!("\nevaluating the baseline detector (10-fold)…");
    let (base, base_std) = evaluate(&lg.graph, &labels, lg.num_classes, 5);
    println!("no augmentation:      accuracy {base:.4} ± {base_std:.4}");

    // FairGen proposes new plausible edges.
    let mut rng = StdRng::seed_from_u64(3);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("ACM is labeled");
    let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());
    let cfg = FairGenConfig { num_walks: 300, cycles: 2, gen_epochs: 2, ..Default::default() };
    println!("\ntraining FairGen and proposing +5% edges…");
    let trained = FairGen::new(cfg).train(&lg.graph, &task, 21).expect("valid detector input");
    let generated = trained.generate(22).expect("generate");
    let augmented = augment_graph(&lg.graph, &generated, 0.05, &mut rng);
    println!(
        "augmented graph: m={} (+{} proposed edges)",
        augmented.m(),
        augmented.m() - lg.graph.m()
    );

    let (aug, aug_std) = evaluate(&augmented, &labels, lg.num_classes, 5);
    println!("with augmentation:    accuracy {aug:.4} ± {aug_std:.4}");
    println!(
        "\nimprovement: {:+.4} absolute ({:+.1}% relative)",
        aug - base,
        100.0 * (aug - base) / base
    );
}
