//! Quickstart: train FairGen on a small two-community graph and compare the
//! generated graph against the original on the nine network statistics.
//!
//! Run with: `cargo run -p fairgen-suite --release --example quickstart`

use fairgen_core::{FairGen, FairGenConfig, FairGenInput};
use fairgen_data::toy_two_community;
use fairgen_metrics::{all_metrics, DiscrepancyReport, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A graph with a small protected community (|S+| = 20 of 100 nodes)
    //    and few-shot class labels — the paper's Problem 1 input.
    let lg = toy_two_community(7);
    let mut rng = StdRng::seed_from_u64(0);
    let labeled = lg.sample_few_shot_labels(4, &mut rng);
    let input = FairGenInput {
        graph: lg.graph.clone(),
        labeled,
        num_classes: lg.num_classes,
        protected: lg.protected.clone(),
    };
    println!(
        "input graph: n={}, m={}, |S+|={}",
        input.graph.n(),
        input.graph.m(),
        input.protected.as_ref().map_or(0, |s| s.len())
    );

    // 2. Train (Algorithm 1) and generate (fair assembly, Section II-D).
    let mut cfg = FairGenConfig::default();
    cfg.num_walks = 400; // scaled for a quick demo
    cfg.cycles = 2;
    let fairgen = FairGen::new(cfg);
    println!("training FairGen ({} self-paced cycles)…", cfg.cycles);
    let mut trained = fairgen.train(&input, 42);
    for report in &trained.history {
        println!(
            "  cycle {}: lambda={:.3}, pseudo-labels={}, {}",
            report.cycle, report.lambda, report.pseudo_labels, report.objective
        );
    }
    let generated = trained.generate(43);

    // 3. Compare the nine statistics of Table II.
    let orig = all_metrics(&input.graph);
    let synth = all_metrics(&generated);
    println!("\n{:<6} {:>12} {:>12}", "metric", "original", "generated");
    for m in Metric::ALL {
        println!("{:<6} {:>12.4} {:>12.4}", m.abbrev(), orig.get(m), synth.get(m));
    }

    // 4. Overall and protected-group discrepancies (Eqs. 15–16).
    let report = DiscrepancyReport::compute(
        &input.graph,
        &generated,
        input.protected.as_ref(),
    );
    println!("\nmean overall discrepancy R  = {:.4}", report.mean_overall());
    println!(
        "mean protected discrepancy R+ = {:.4}",
        report.mean_protected().expect("protected group present")
    );
}
