//! Quickstart: train FairGen **once** on a small two-community graph,
//! stream the per-cycle diagnostics through a `TrainObserver` (to the
//! console *and*, as JSONL, to a file a dashboard could tail), then draw
//! **several** synthetic graphs from the single trained model and compare
//! each against the original on the nine network statistics.
//!
//! Run with: `cargo run -p fairgen-suite --release --example quickstart`

use fairgen_core::{
    CycleReport, FairGen, FairGenConfig, JsonlObserver, TaskSpec, TrainObserver,
};
use fairgen_data::toy_two_community;
use fairgen_metrics::{all_metrics, DiscrepancyReport, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> fairgen_core::error::Result<()> {
    // 1. A graph with a small protected community (|S+| = 20 of 100 nodes)
    //    and few-shot class labels — the paper's Problem 1 input, carried
    //    by a TaskSpec shared with every other generator in the workspace.
    let lg = toy_two_community(7);
    let mut rng = StdRng::seed_from_u64(0);
    let labeled = lg.sample_few_shot_labels(4, &mut rng)?;
    let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());
    println!(
        "input graph: n={}, m={}, |S+|={}",
        lg.graph.n(),
        lg.graph.m(),
        task.protected.as_ref().map_or(0, |s| s.len())
    );

    // 2. Train (Algorithm 1) once, observing each cycle as it completes.
    //    Two sinks share the stream: the console line below, and a
    //    JsonlObserver writing one JSON object per cycle to a file
    //    (`tail -f … | jq` follows a long run live). Returning
    //    ControlFlow::Break from the observer would cancel training at the
    //    cycle boundary; here we just watch.
    // Budget scaled for a quick demo.
    let cfg = FairGenConfig { num_walks: 400, cycles: 2, ..Default::default() };
    let fairgen = FairGen::new(cfg);
    let jsonl_path = std::env::temp_dir().join("fairgen-quickstart-cycles.jsonl");
    let mut jsonl = JsonlObserver::new(std::fs::File::create(&jsonl_path)?);
    println!("training FairGen ({} self-paced cycles)…", cfg.cycles);
    println!("streaming cycle reports to {}", jsonl_path.display());
    let mut observer = |report: &CycleReport| {
        println!(
            "  cycle {}: lambda={:.3}, pseudo-labels={}, {}",
            report.cycle, report.lambda, report.pseudo_labels, report.objective
        );
        jsonl.on_cycle(report)
    };
    let trained = fairgen.train_observed(&lg.graph, &task, 42, &mut observer)?;
    if let Some(e) = jsonl.io_error() {
        eprintln!("warning: JSONL sink failed mid-run: {e}");
    }

    // 3. Fit once, generate many: three independent reproducible draws
    //    from the one trained model — no retraining per sample.
    let samples = trained.generate_batch(&[43, 44, 45])?;

    // 4. Compare the nine statistics of Table II, per draw.
    let orig = all_metrics(&lg.graph);
    print!("\n{:<6} {:>12}", "metric", "original");
    for i in 0..samples.len() {
        print!(" {:>11}{}", "draw", i + 1);
    }
    println!();
    for m in Metric::ALL {
        print!("{:<6} {:>12.4}", m.abbrev(), orig.get(m));
        for sample in &samples {
            print!(" {:>12.4}", all_metrics(sample).get(m));
        }
        println!();
    }

    // 5. Overall and protected-group discrepancies (Eqs. 15–16), per draw.
    println!();
    for (i, sample) in samples.iter().enumerate() {
        let report = DiscrepancyReport::compute(&lg.graph, sample, task.protected.as_ref());
        println!(
            "draw {}: mean R = {:.4}, mean R+ = {:.4}",
            i + 1,
            report.mean_overall(),
            report.mean_protected().expect("protected group present"),
        );
    }
    Ok(())
}
