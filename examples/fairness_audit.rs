//! Fairness audit of graph generators — the paper's representation-disparity
//! analysis as a reusable procedure: given a generator's output, measure
//! (1) the protected-group discrepancy R⁺ across the nine statistics and
//! (2) the group-separation score of the generated graph's embedding, and
//! compare a fairness-unaware generator (TagGen-lite) against FairGen.
//!
//! Run with: `cargo run -p fairgen-suite --release --example fairness_audit`

use fairgen_baselines::{GraphGenerator, TagGenGenerator, TaskSpec, WalkLmBudget};
use fairgen_core::{FairGenConfig, FairGenGenerator};
use fairgen_data::toy_two_community;
use fairgen_embed::{group_separation, pca_2d, Node2Vec, Node2VecConfig};
use fairgen_graph::{Graph, NodeSet};
use fairgen_metrics::{protected_discrepancies, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn audit(name: &str, original: &Graph, generated: &Graph, s: &NodeSet) {
    println!("--- audit: {name} ---");
    let rp = protected_discrepancies(original, generated, s);
    for (m, v) in Metric::ALL.iter().zip(rp.iter()) {
        println!("  R+ {:<5} {v:.4}", m.abbrev());
    }
    println!("  mean R+     {:.4}", rp.iter().sum::<f64>() / 9.0);
    let emb = Node2Vec::train(
        generated,
        &Node2VecConfig { dim: 24, walks_per_node: 8, epochs: 3, ..Default::default() },
        9,
    );
    let sep = group_separation(&pca_2d(&emb.vectors), s);
    println!("  group separation in embedding space: {sep:.3}");
    println!();
}

fn main() {
    let lg = toy_two_community(42);
    let s = lg.protected.clone().expect("toy has a protected group");
    println!(
        "auditing generators on a graph with a {}-node protected community (of {})\n",
        s.len(),
        lg.graph.n()
    );
    // Reference point: the original graph audited against itself.
    audit("original graph (reference)", &lg.graph, &lg.graph, &s);

    // The shared task metadata every generator receives.
    let mut rng = StdRng::seed_from_u64(1);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());

    // Fairness-unaware deep generator (ignores the task beyond validation).
    let taggen = TagGenGenerator {
        budget: WalkLmBudget { train_walks: 400, epochs: 3, ..Default::default() },
        ..Default::default()
    };
    let out_taggen = taggen.fit_generate(&lg.graph, &task, 1234).expect("valid audit input");
    audit("TagGen-lite (fairness-unaware)", &lg.graph, &out_taggen, &s);

    // FairGen.
    let cfg = FairGenConfig { num_walks: 400, cycles: 2, ..Default::default() };
    let fairgen = FairGenGenerator::new(cfg);
    let out_fairgen = fairgen.fit_generate(&lg.graph, &task, 1234).expect("valid audit input");
    audit("FairGen", &lg.graph, &out_fairgen, &s);

    println!("a fair generator shows smaller mean R+ and higher separation.");
}
