//! Privacy-preserving graph sharing — the paper's motivating scenario:
//! a financial institute wants to share its transaction network with a
//! partner without releasing real user data. A FairGen model is trained on
//! the private graph; only the synthetic graph leaves the house. The demo
//! verifies that (1) the synthetic graph matches the real one on the nine
//! aggregate statistics, (2) the minority user segment (protected group) is
//! preserved rather than washed out, and (3) no real edge list is leaked —
//! a measurable fraction of synthetic edges never existed.
//!
//! Run with: `cargo run -p fairgen-suite --release --example privacy_sharing`

use fairgen_core::{FairGen, FairGenConfig, TaskSpec};
use fairgen_data::Dataset;
use fairgen_metrics::{overall_discrepancies, protected_discrepancies, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The "private" transaction network: the BLOG-shaped benchmark (users,
    // communities, and a minority segment S+).
    let lg = Dataset::Blog.generate(2024);
    let mut rng = StdRng::seed_from_u64(1);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("BLOG is labeled");
    let protected = lg.protected.clone().expect("BLOG has a protected group");
    println!(
        "private graph: n={}, m={}, minority segment |S+|={} ({:.1}% of users)",
        lg.graph.n(),
        lg.graph.m(),
        protected.len(),
        100.0 * lg.protected_ratio()
    );

    let cfg = FairGenConfig { num_walks: 300, cycles: 2, gen_epochs: 2, ..Default::default() };
    let task = TaskSpec::new(labeled, lg.num_classes, Some(protected.clone()));
    println!("training FairGen on the private graph…");
    let trained =
        FairGen::new(cfg).train(&lg.graph, &task, 99).expect("valid private-graph input");
    let shareable = trained.generate(100).expect("generate");

    // (1) Aggregate fidelity.
    let r = overall_discrepancies(&lg.graph, &shareable);
    println!("\naggregate fidelity (overall discrepancy, smaller = closer):");
    for (m, v) in Metric::ALL.iter().zip(r.iter()) {
        println!("  {:<5} {:.4}", m.abbrev(), v);
    }

    // (2) Minority-segment preservation.
    let rp = protected_discrepancies(&lg.graph, &shareable, &protected);
    let mean_rp = rp.iter().sum::<f64>() / 9.0;
    println!("\nminority-segment discrepancy R+ (mean over 9 metrics): {mean_rp:.4}");
    let quota_in = lg
        .graph
        .edges()
        .filter(|&(u, v)| protected.contains(u) || protected.contains(v))
        .count();
    let quota_out = shareable
        .edges()
        .filter(|&(u, v)| protected.contains(u) || protected.contains(v))
        .count();
    println!("minority-incident edges: private {quota_in} → shareable {quota_out}");

    // (3) The shared artifact is synthetic, not a copy.
    let copied = shareable.edges().filter(|&(u, v)| lg.graph.has_edge(u, v)).count();
    println!(
        "\nedge overlap with the private graph: {copied}/{} ({:.1}%) — the rest is synthetic",
        shareable.m(),
        100.0 * copied as f64 / shareable.m() as f64
    );
    println!("(sharing the synthetic graph reveals structure, not the raw edge list)");
}
