//! Concurrent serving: a [`FairGenServer`] answering generation requests
//! from many client threads at once — sharded registries, cross-client
//! request coalescing, cross-request sample dedup, and checkpoint
//! warm-start across a restart.
//!
//! The scenario: a synthetic-data service holds FairGen models for several
//! customer graphs. Clients hammer it from separate threads; requests route
//! to registry shards by fingerprint, same-model requests that pile up
//! while a shard is busy coalesce into single batched calls, repeated
//! requests are answered straight from the dedup cache with zero model
//! invocations, and a "restarted" service warm-starts from the checkpoints
//! the old one spilled at shutdown.
//!
//! Run with: `cargo run -p fairgen-suite --release --example serving`
//!
//! Pass `--socket` to run the same scenario over the network instead: the
//! `FairGenServer` goes behind a `fairgen-rpc` HTTP/1.1 JSON-RPC front-end
//! on an ephemeral loopback port, and every tenant becomes a real TCP
//! client — same dedup and warm-start guarantees, now across a socket. In
//! this mode the example also scrapes `GET /metrics` (Prometheus text
//! exposition) and `GET /healthz` off the same port, the way a monitoring
//! stack would.

use std::sync::Arc;
use std::time::Instant;

use fairgen_core::{FairGenConfig, FairGenGenerator, TaskSpec};
use fairgen_data::toy_two_community;
use fairgen_serve::{FairGenServer, RegistryConfig, ServedFrom, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tenant(task: u64) -> (Arc<fairgen_graph::Graph>, Arc<TaskSpec>) {
    // Each "tenant" is a differently-seeded two-community graph.
    let lg = toy_two_community(task);
    let mut rng = StdRng::seed_from_u64(task);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    (
        Arc::new(lg.graph.clone()),
        Arc::new(TaskSpec::new(labeled, lg.num_classes, lg.protected.clone())),
    )
}

/// The `--socket` variant: the same three tenants, but every request
/// crosses a real TCP connection through the `fairgen-rpc` front-end.
fn run_over_socket() -> fairgen_core::error::Result<()> {
    use fairgen_rpc::{RpcClient, RpcConfig, RpcServer};

    let ckpt_dir = std::env::temp_dir().join("fairgen-serving-example-socket");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let cfg = FairGenConfig { num_walks: 200, cycles: 2, ..Default::default() };
    let server_cfg = ServerConfig {
        shards: 2,
        registry: RegistryConfig {
            capacity: 2,
            checkpoint_dir: Some(ckpt_dir.clone()),
            ..RegistryConfig::default()
        },
        dedup_capacity: 64,
        ..ServerConfig::default()
    };
    let inner =
        FairGenServer::new(move || Box::new(FairGenGenerator::new(cfg)), server_cfg.clone())?;
    let mut rpc = RpcServer::serve(inner, RpcConfig::default())?;
    let addr = rpc.local_addr();
    println!("fairgen-rpc listening on {addr}\n");

    let tenants: Vec<_> = (1..=3u64).map(tenant).collect();
    std::thread::scope(|scope| {
        for (id, (graph, task)) in tenants.iter().enumerate() {
            scope.spawn(move || {
                let mut client = RpcClient::connect(addr).expect("connect");
                let seeds = vec![10 + id as u64, 20 + id as u64];
                let started = Instant::now();
                let first =
                    client.generate_batch(graph, task, 42, &seeds).expect("serve over socket");
                println!(
                    "tenant {id}: {} draw(s) in {:>7.3}s  [{:?}]",
                    first.graphs.len(),
                    started.elapsed().as_secs_f64(),
                    first.served_from,
                );
                let started = Instant::now();
                let again = client.generate_batch(graph, task, 42, &seeds).expect("repeat");
                assert_eq!(again.served_from, ServedFrom::DedupCache);
                assert_eq!(again.graphs, first.graphs, "dedup must replay the same bytes");
                println!(
                    "tenant {id}: repeat in {:>7.3}s  [{:?}] — zero model invocations",
                    started.elapsed().as_secs_f64(),
                    again.served_from,
                );
            });
        }
    });

    let mut client = RpcClient::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats over socket");
    let totals = stats.get("totals").expect("totals");
    let count = |k: &str| totals.get(k).and_then(fairgen_rpc::Json::as_u64).unwrap_or(0);
    println!(
        "\nstats over the socket: {} requests, {} fits, {} dedup hits, \
         largest coalesced drain {}",
        count("requests"),
        count("fits"),
        count("dedup_hits"),
        count("max_drain"),
    );
    assert_eq!(count("fits"), 3, "one fit per tenant, regardless of interleaving");

    // A monitoring stack sees the same numbers without speaking JSON-RPC:
    // plain GETs on the same port serve the Prometheus exposition and the
    // health verdict.
    let scrape = client.http_get("/metrics").expect("scrape /metrics");
    assert_eq!(scrape.status, 200);
    let exposition = String::from_utf8(scrape.body).expect("utf-8 exposition");
    let families = fairgen_obs::parse(&exposition).expect("exposition parses");
    let dedup_hits: u64 = families
        .iter()
        .find_map(|f| match f {
            fairgen_obs::MetricFamily::Counter { name, points, .. }
                if name == "fairgen_dedup_hits_total" =>
            {
                Some(points.iter().map(|p| p.value).sum())
            }
            _ => None,
        })
        .expect("dedup counter is exported");
    assert_eq!(dedup_hits, count("dedup_hits"), "scrape agrees with the stats RPC");
    let healthz = client.http_get("/healthz").expect("scrape /healthz");
    println!(
        "scraped /metrics: {} families, {} B — dedup counter matches; /healthz {}",
        families.len(),
        exposition.len(),
        healthz.status,
    );
    assert_eq!(healthz.status, 200, "an idle server is healthy");
    drop(client);

    // "Restart": graceful shutdown drains connections and spills every
    // dirty model; a fresh server on the same directory warm-starts.
    rpc.shutdown();
    let revived_inner =
        FairGenServer::new(move || Box::new(FairGenGenerator::new(cfg)), server_cfg)?;
    let revived = RpcServer::serve(revived_inner, RpcConfig::default())?;
    let mut client = RpcClient::connect(revived.local_addr()).expect("reconnect");
    let (graph, task) = &tenants[0];
    let started = Instant::now();
    let response = client.generate_batch(graph, task, 42, &[10]).expect("warm over socket");
    println!(
        "\nafter restart, tenant 0 served in {:.3}s [{:?}]",
        started.elapsed().as_secs_f64(),
        response.served_from,
    );
    assert_eq!(response.served_from, ServedFrom::Checkpoint);

    drop(client);
    drop(revived);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}

fn main() -> fairgen_core::error::Result<()> {
    if std::env::args().any(|a| a == "--socket") {
        return run_over_socket();
    }
    let ckpt_dir = std::env::temp_dir().join("fairgen-serving-example");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let cfg = FairGenConfig { num_walks: 200, cycles: 2, ..Default::default() };
    let server_cfg = ServerConfig {
        shards: 2,
        registry: RegistryConfig {
            capacity: 2,
            checkpoint_dir: Some(ckpt_dir.clone()),
            ..RegistryConfig::default()
        },
        dedup_capacity: 64,
        ..ServerConfig::default()
    };
    let server =
        FairGenServer::new(move || Box::new(FairGenGenerator::new(cfg)), server_cfg.clone())?;
    println!(
        "{} server: {} shards, capacity 2/shard, checkpoints in {}\n",
        server.generator_name(),
        server.shard_count(),
        ckpt_dir.display()
    );

    // Three tenants, three concurrent client threads. Each client sends its
    // request twice — the repeat is answered from the dedup cache.
    let tenants: Vec<_> = (1..=3u64).map(tenant).collect();
    std::thread::scope(|scope| {
        for (id, (graph, task)) in tenants.iter().enumerate() {
            let server = &server;
            scope.spawn(move || {
                let seeds = vec![10 + id as u64, 20 + id as u64];
                let started = Instant::now();
                let first = server
                    .submit_shared(Arc::clone(graph), Arc::clone(task), 42, seeds.clone())
                    .expect("submit")
                    .wait()
                    .expect("serve");
                println!(
                    "tenant {id}: {} draw(s) in {:>7.3}s  [{:?}]",
                    first.graphs.len(),
                    started.elapsed().as_secs_f64(),
                    first.served_from,
                );
                let started = Instant::now();
                let again = server
                    .submit_shared(Arc::clone(graph), Arc::clone(task), 42, seeds)
                    .expect("submit")
                    .wait()
                    .expect("serve repeat");
                assert_eq!(again.served_from, ServedFrom::DedupCache);
                assert_eq!(again.graphs, first.graphs, "dedup must replay the same bytes");
                println!(
                    "tenant {id}: repeat in {:>7.3}s  [{:?}] — zero model invocations",
                    started.elapsed().as_secs_f64(),
                    again.served_from,
                );
            });
        }
    });

    let stats = server.stats();
    let registry = stats.registry();
    println!(
        "\nstats: {} requests, {} fits, {} memory hits, {} dedup hits, \
         largest coalesced drain {}",
        stats.requests(),
        stats.fits(),
        registry.memory_hits,
        stats.dedup_hits(),
        stats.max_drain(),
    );
    assert_eq!(stats.fits(), 3, "one fit per tenant, regardless of interleaving");

    // "Restart": drop the server (graceful shutdown spills every dirty
    // model), then start a fresh one on the same checkpoint directory — no
    // tenant pays for retraining.
    drop(server);
    let revived = FairGenServer::new(move || Box::new(FairGenGenerator::new(cfg)), server_cfg)?;
    let (graph, task) = &tenants[0];
    let started = Instant::now();
    let response =
        revived.submit_shared(Arc::clone(graph), Arc::clone(task), 42, vec![10])?.wait()?;
    println!(
        "\nafter restart, tenant 0 served in {:.3}s [{:?}] — {} refits",
        started.elapsed().as_secs_f64(),
        response.served_from,
        revived.stats().fits(),
    );
    assert_eq!(response.served_from, ServedFrom::Checkpoint);

    drop(revived);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}
