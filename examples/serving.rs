//! Serving: a long-lived `ModelRegistry` answering generation requests for
//! many tenants — fit once per distinct (graph, task, seed), serve every
//! later request from the cache, batch same-key requests, and survive a
//! process restart through checkpoint files.
//!
//! The scenario: a synthetic-data service holds FairGen models for several
//! customer graphs. Requests arrive interleaved; the registry keeps the hot
//! models in memory under a budget, spills cold ones to disk, and a
//! "restarted" service warm-starts from the spilled checkpoints instead of
//! retraining.
//!
//! Run with: `cargo run -p fairgen-suite --release --example serving`

use std::time::Instant;

use fairgen_core::{FairGenConfig, FairGenGenerator, TaskSpec};
use fairgen_data::toy_two_community;
use fairgen_serve::{GenerateRequest, ModelRegistry, RegistryConfig, ServedFrom};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn label(task: u64) -> (fairgen_graph::Graph, TaskSpec) {
    // Each "tenant" is a differently-seeded two-community graph.
    let lg = toy_two_community(task);
    let mut rng = StdRng::seed_from_u64(task);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    (lg.graph.clone(), TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()))
}

fn main() -> fairgen_core::error::Result<()> {
    let ckpt_dir = std::env::temp_dir().join("fairgen-serving-example");
    let cfg = FairGenConfig { num_walks: 200, cycles: 2, ..Default::default() };
    let mut registry = ModelRegistry::with_config(
        Box::new(FairGenGenerator::new(cfg)),
        RegistryConfig { capacity: 2, checkpoint_dir: Some(ckpt_dir.clone()) },
    )?;
    println!(
        "registry over {} (capacity 2, checkpoints in {})\n",
        registry.generator_name(),
        ckpt_dir.display()
    );

    // Three tenants; tenant A is requested twice — the second time must be
    // a pure cache hit.
    let (graph_a, task_a) = label(1);
    let (graph_b, task_b) = label(2);
    let (graph_c, task_c) = label(3);
    let traffic = [
        ("tenant A", &graph_a, &task_a, vec![10, 11]),
        ("tenant B", &graph_b, &task_b, vec![20]),
        ("tenant A", &graph_a, &task_a, vec![12, 13, 14]),
        ("tenant C", &graph_c, &task_c, vec![30]), // evicts + spills the LRU
        ("tenant B", &graph_b, &task_b, vec![21]),
    ];
    for (who, graph, task, seeds) in traffic {
        let started = Instant::now();
        let response = registry.handle(&GenerateRequest::new(graph, task, 42, seeds))?;
        println!(
            "{who}: {} draw(s) in {:>7.3}s  [{:?}]",
            response.graphs.len(),
            started.elapsed().as_secs_f64(),
            response.served_from,
        );
    }
    let stats = registry.stats();
    println!(
        "\nstats: {} requests, {} cold fits, {} memory hits, {} checkpoint loads, \
         {} evictions ({} spilled)",
        stats.requests,
        stats.cold_fits,
        stats.memory_hits,
        stats.checkpoint_loads,
        stats.evictions,
        stats.spills,
    );

    // Same-key batching: five requests over two keys → at most two fits,
    // one generate_batch per key.
    let batch = vec![
        GenerateRequest::single(&graph_a, &task_a, 42, 15),
        GenerateRequest::single(&graph_b, &task_b, 42, 22),
        GenerateRequest::single(&graph_a, &task_a, 42, 16),
        GenerateRequest::single(&graph_a, &task_a, 42, 17),
        GenerateRequest::single(&graph_b, &task_b, 42, 23),
    ];
    let responses = registry.handle_batch(&batch)?;
    println!(
        "\nbatched {} requests over 2 keys; cold fits total: {}",
        responses.len(),
        registry.stats().cold_fits
    );

    // "Restart": spill everything, drop the registry, start a fresh one on
    // the same checkpoint directory — no tenant pays for retraining.
    registry.spill_all()?;
    drop(registry);
    let mut revived = ModelRegistry::with_config(
        Box::new(FairGenGenerator::new(cfg)),
        RegistryConfig { capacity: 2, checkpoint_dir: Some(ckpt_dir.clone()) },
    )?;
    let started = Instant::now();
    let response = revived.handle(&GenerateRequest::single(&graph_a, &task_a, 42, 10))?;
    println!(
        "\nafter restart, tenant A served in {:.3}s [{:?}] — {} refits",
        started.elapsed().as_secs_f64(),
        response.served_from,
        revived.stats().cold_fits,
    );
    assert_eq!(response.served_from, ServedFrom::Checkpoint);

    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}
